//! Cycle-level simulation of one Ristretto compute tile (§IV-C).
//!
//! Models the Atomizer → Atomputer → Atomulator → accumulate-buffer
//! pipeline per cycle:
//!
//! * the Atomizer emits one non-zero activation atom per cycle (zero values
//!   never reach it, so it never starves);
//! * the Atomputer is a systolic chain of `N` multipliers holding one
//!   static weight atom each; an activation atom enters at the left and
//!   shifts right one lane per cycle, so lane `j` processes atom `s − j`
//!   in step `s`; ping-pong weight registers overlap a segment's drain
//!   with the next segment's fill (only the final drain is exposed);
//! * on an activation's last atom, each lane delivers its accumulated
//!   partial to the Atomulator, which routes it through a crossbar to the
//!   accumulate-buffer bank of the weight atom's output channel; each bank
//!   retires one write per cycle, excess queues in a FIFO of configurable
//!   depth, and a full FIFO stalls the pipeline.
//!
//! The channel-first stream shuffle (§IV-C2) makes concurrent deliveries
//! target distinct banks, which is why the shuffled order shows (near-)zero
//! stalls while a naive order backs up — the test suite demonstrates both.

use crate::config::{ConfigError, RistrettoConfig};
use crate::fault::{
    fold_delivery, FaultInjector, FaultSite, FaultStructure, FifoAction, FifoCheck,
};
use atomstream::cycles::ideal_steps;
use atomstream::stream::{ActivationStream, WeightStream};
use serde::{Deserialize, Serialize};

/// Counters produced by a cycle-level tile run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileReport {
    /// Total cycles including stalls.
    pub cycles: u64,
    /// Cycles lost to crossbar/FIFO backpressure.
    pub stall_cycles: u64,
    /// Effectual atom multiplications.
    pub atom_mults: u64,
    /// Deliveries routed to the accumulate buffer.
    pub deliveries: u64,
    /// Same-cycle deliveries that collided on one accumulate-buffer bank
    /// (each collision queues one entry in that bank's FIFO).
    pub crossbar_conflicts: u64,
    /// Deepest FIFO occupancy observed.
    pub max_queue: usize,
}

impl TileReport {
    /// Ideal (stall-free) cycles.
    pub fn ideal_cycles(&self) -> u64 {
        self.cycles - self.stall_cycles
    }
}

/// A cycle-level compute-tile simulator.
#[derive(Debug, Clone)]
pub struct TileSim {
    multipliers: usize,
    fifo_depth: usize,
    banks: usize,
}

impl TileSim {
    /// Builds a tile simulator from an architecture configuration.
    ///
    /// # Panics
    /// Panics on an invalid configuration; use [`TileSim::try_new`] for a
    /// fallible variant.
    pub fn new(cfg: &RistrettoConfig) -> Self {
        Self::try_new(cfg).expect("valid Ristretto configuration")
    }

    /// Fallible variant of [`TileSim::new`].
    ///
    /// # Errors
    /// Returns the [`ConfigError`] describing the inconsistency.
    pub fn try_new(cfg: &RistrettoConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Self {
            multipliers: cfg.multipliers,
            fifo_depth: cfg.fifo_depth,
            banks: cfg.multipliers, // §IV-C4: bank count = static stream length
        })
    }

    /// Runs one channel's static weight stream against one tile's
    /// activation stream, cycle by cycle.
    pub fn run(&self, weights: &WeightStream, acts: &ActivationStream) -> TileReport {
        self.run_inner(weights, acts, None).0
    }

    /// Fault-aware variant of [`TileSim::run`]: Atomulator FIFO entries may
    /// be dropped or duplicated at the configured rate, and the returned
    /// [`FifoCheck`] carries the enqueue-accounting monitor's verdict.
    /// `site.item` is overwritten with the running delivery ordinal.
    ///
    /// With a quiescent injector the report is byte-identical to
    /// [`TileSim::run`] on the same streams.
    pub fn run_faulty(
        &self,
        weights: &WeightStream,
        acts: &ActivationStream,
        injector: &FaultInjector,
        site: FaultSite,
    ) -> (TileReport, FifoCheck) {
        self.run_inner(weights, acts, Some((injector, site)))
    }

    fn run_inner(
        &self,
        weights: &WeightStream,
        acts: &ActivationStream,
        fault: Option<(&FaultInjector, FaultSite)>,
    ) -> (TileReport, FifoCheck) {
        let mut report = TileReport::default();
        let mut check = FifoCheck::default();
        let t = acts.len();
        let s = weights.len();
        if t == 0 || s == 0 {
            return (report, check);
        }

        let mut queues = vec![0usize; self.banks];
        // Running delivery ordinal; doubles as the per-item fault site and
        // the index folded into the enqueue-accounting digests.
        let mut delivery_idx: u64 = 0;
        // Per-cycle bank-collision detection without clearing a bitmap
        // every step: a bank "has a delivery this cycle" iff its stamp
        // equals the current step's stamp.
        let mut bank_stamp = vec![0u64; self.banks];
        let mut stamp = 0u64;
        let segments: Vec<_> = weights.entries().chunks(self.multipliers).collect();
        let last_seg = segments.len() - 1;

        // Every segment runs its full t + L - 1 systolic steps, but the
        // drain of segment i overlaps the fill of segment i+1 (ping-pong
        // weight registers), so only the last segment's drain costs time.
        let mut overlapped: u64 = 0;
        for (seg_idx, segment) in segments.iter().enumerate() {
            if seg_idx != last_seg {
                overlapped += segment.len() as u64 - 1;
            }
            for step in 0..(t + segment.len() - 1) {
                report.cycles += 1;
                stamp += 1;
                // Lane j processes activation atom (step - j).
                let mut delivered_this_cycle: Vec<usize> = Vec::new();
                for (j, w) in segment.iter().enumerate() {
                    let Some(ai) = step.checked_sub(j) else { break };
                    if ai >= t {
                        continue;
                    }
                    let a = &acts.entries()[ai];
                    report.atom_mults += 1;
                    if a.atom.last {
                        let bank = w.out_ch as usize % self.banks;
                        if bank_stamp[bank] == stamp {
                            report.crossbar_conflicts += 1;
                        } else {
                            bank_stamp[bank] = stamp;
                        }
                        delivered_this_cycle.push(bank);
                        report.deliveries += 1;
                    }
                }
                // Crossbar + banks: each bank retires one write per cycle;
                // surplus sits in FIFOs; overflow stalls the pipe until the
                // deepest queue drains back to the FIFO depth.
                for q in queues.iter_mut() {
                    *q = q.saturating_sub(1);
                }
                for bank in delivered_this_cycle {
                    match fault {
                        None => queues[bank] += 1,
                        Some((injector, site)) => {
                            // What the Atomputer handed the crossbar…
                            check.expected_digest =
                                fold_delivery(check.expected_digest, delivery_idx, bank as u64);
                            let fault_site = FaultSite {
                                item: delivery_idx as usize,
                                ..site
                            };
                            // …versus what the FIFO actually enqueued.
                            match injector.decide(FaultStructure::Fifo, fault_site) {
                                None => {
                                    queues[bank] += 1;
                                    check.actual_digest = fold_delivery(
                                        check.actual_digest,
                                        delivery_idx,
                                        bank as u64,
                                    );
                                }
                                Some(entropy) => {
                                    check.injected += 1;
                                    match FaultInjector::fifo_action(entropy) {
                                        FifoAction::Drop => {}
                                        FifoAction::Duplicate => {
                                            queues[bank] += 2;
                                            for _ in 0..2 {
                                                check.actual_digest = fold_delivery(
                                                    check.actual_digest,
                                                    delivery_idx,
                                                    bank as u64,
                                                );
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    delivery_idx += 1;
                }
                let deepest = queues.iter().copied().max().unwrap_or(0);
                report.max_queue = report.max_queue.max(deepest);
                if deepest > self.fifo_depth {
                    let stall = (deepest - self.fifo_depth) as u64;
                    report.stall_cycles += stall;
                    report.cycles += stall;
                    for q in queues.iter_mut() {
                        *q = q.saturating_sub(stall as usize);
                    }
                }
            }
        }
        // Account the trailing drain of in-flight FIFO entries, then credit
        // the overlapped segment drains back.
        let residue = queues.iter().copied().max().unwrap_or(0) as u64;
        report.cycles += residue;
        report.cycles -= overlapped;
        obs::record(obs::Event::AtomputerCycles, report.cycles);
        obs::record(obs::Event::AtomputerAtomMults, report.atom_mults);
        obs::record(obs::Event::AtomulatorDeliveries, report.deliveries);
        obs::record(
            obs::Event::AtomulatorCrossbarConflicts,
            report.crossbar_conflicts,
        );
        obs::record(obs::Event::AtomulatorStallCycles, report.stall_cycles);
        obs::record(obs::Event::AtomulatorFifoHighwater, report.max_queue as u64);
        (report, check)
    }

    /// Ideal step count for this tile per the paper's Eq 3.
    pub fn ideal(&self, t: u64, s: u64) -> u64 {
        ideal_steps(t, s, self.multipliers as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomstream::atom::AtomBits;
    use atomstream::compress::{compress_activations, compress_weights, compress_weights_naive};
    use atomstream::flatten::{FlatActivation, FlatWeight};
    use qnn::rng::SeededRng;

    fn random_streams(
        seed: u64,
        n_acts: usize,
        n_weights: usize,
        out_chans: u16,
        shuffled: bool,
    ) -> (WeightStream, ActivationStream) {
        let mut rng = SeededRng::new(seed);
        let mut fa = Vec::new();
        for i in 0..n_acts {
            let v = 1 + rng.below(255) as i32;
            fa.push(FlatActivation {
                value: v,
                x: (i % 8) as u16,
                y: (i / 8 % 8) as u16,
            });
        }
        let mut fw = Vec::new();
        for _ in 0..n_weights {
            let m = 1 + rng.below(127) as i32;
            let v = if rng.bernoulli(0.5) { -m } else { m };
            fw.push(FlatWeight {
                value: v,
                x: rng.below(3) as u16,
                y: rng.below(3) as u16,
                out_ch: rng.below(out_chans as usize) as u16,
            });
        }
        let acts = compress_activations(&fa, 8, AtomBits::B2).unwrap();
        let weights = if shuffled {
            compress_weights(&fw, 8, AtomBits::B2).unwrap()
        } else {
            compress_weights_naive(&fw, 8, AtomBits::B2).unwrap()
        };
        (weights, acts)
    }

    fn cfg(multipliers: usize) -> RistrettoConfig {
        RistrettoConfig {
            multipliers,
            ..RistrettoConfig::paper_default()
        }
    }

    #[test]
    fn matches_eq3_when_stall_free() {
        let (w, a) = random_streams(3, 20, 40, 32, true);
        let sim = TileSim::new(&cfg(32));
        let r = sim.run(&w, &a);
        let ideal = sim.ideal(a.len() as u64, w.len() as u64);
        assert_eq!(r.atom_mults, a.len() as u64 * w.len() as u64);
        // Stall-free cycles equal Eq 3 up to the FIFO residue drain.
        assert!(r.ideal_cycles() >= ideal);
        assert!(
            r.ideal_cycles() <= ideal + sim.banks as u64,
            "{} vs {ideal}",
            r.ideal_cycles()
        );
    }

    #[test]
    fn shuffled_stream_stalls_no_more_than_naive() {
        // Many weight atoms on few output channels maximize contention.
        let (w_shuf, a) = random_streams(7, 24, 64, 4, true);
        let (w_naive, _) = random_streams(7, 24, 64, 4, false);
        let sim = TileSim::new(&cfg(16));
        let rs = sim.run(&w_shuf, &a);
        let rn = sim.run(&w_naive, &a);
        assert_eq!(rs.atom_mults, rn.atom_mults);
        assert_eq!(rs.deliveries, rn.deliveries);
        assert!(
            rs.stall_cycles <= rn.stall_cycles,
            "{} vs {}",
            rs.stall_cycles,
            rn.stall_cycles
        );
        // The channel-first shuffle spreads same-cycle deliveries across
        // banks, so it can only reduce crossbar collisions.
        assert!(
            rs.crossbar_conflicts <= rn.crossbar_conflicts,
            "{} vs {}",
            rs.crossbar_conflicts,
            rn.crossbar_conflicts
        );
    }

    #[test]
    fn contended_banks_report_crossbar_conflicts() {
        // A single output channel forces every delivery into one bank, so
        // any cycle with two deliveries is a conflict.
        let (w, a) = random_streams(17, 24, 48, 1, true);
        let sim = TileSim::new(&cfg(16));
        let r = sim.run(&w, &a);
        assert!(r.crossbar_conflicts > 0, "expected bank collisions");
        // Each conflict queues one entry; none can exceed the delivery count.
        assert!(r.crossbar_conflicts < r.deliveries);
    }

    #[test]
    fn empty_streams_cost_nothing() {
        let sim = TileSim::new(&cfg(8));
        let (w, _) = random_streams(1, 4, 4, 2, true);
        let empty_a = ActivationStream::default();
        assert_eq!(sim.run(&w, &empty_a), TileReport::default());
        let (_, a) = random_streams(1, 4, 4, 2, true);
        let empty_w = WeightStream::default();
        assert_eq!(sim.run(&empty_w, &a), TileReport::default());
    }

    #[test]
    fn deliveries_equal_values_times_weight_atoms() {
        let (w, a) = random_streams(11, 16, 24, 32, true);
        let sim = TileSim::new(&cfg(32));
        let r = sim.run(&w, &a);
        assert_eq!(r.deliveries, a.value_count() as u64 * w.len() as u64);
    }

    #[test]
    fn quiescent_injector_is_byte_identical_to_clean_run() {
        use crate::fault::{FaultConfig, FaultInjector, FaultSite};
        let (w, a) = random_streams(19, 24, 48, 8, true);
        let sim = TileSim::new(&cfg(16));
        let clean = sim.run(&w, &a);
        let injector = FaultInjector::new(FaultConfig::quiescent(42));
        let site = FaultSite {
            layer: 0,
            channel: 0,
            tile: 0,
            attempt: 0,
            item: 0,
        };
        let (faulty, check) = sim.run_faulty(&w, &a, &injector, site);
        assert_eq!(faulty, clean);
        assert_eq!(check.injected, 0);
        assert!(!check.detected());
        // Every delivery is folded into both digests, so they agree and
        // are non-trivial.
        assert_eq!(check.expected_digest, check.actual_digest);
        assert_ne!(check.expected_digest, 0);
    }

    #[test]
    fn fifo_faults_are_detected_and_deterministic() {
        use crate::fault::{FaultConfig, FaultInjector, FaultSite, FaultStructure};
        let (w, a) = random_streams(23, 32, 64, 8, true);
        let sim = TileSim::new(&cfg(16));
        // A high rate guarantees at least one drop/duplicate in ~1.5k
        // deliveries.
        let cfg_f = FaultConfig::quiescent(7).with_rate(FaultStructure::Fifo, 20_000);
        let injector = FaultInjector::new(cfg_f);
        let site = FaultSite {
            layer: 2,
            channel: 1,
            tile: 3,
            attempt: 0,
            item: 0,
        };
        let (r1, c1) = sim.run_faulty(&w, &a, &injector, site);
        assert!(c1.injected > 0, "expected FIFO faults at 2% rate");
        assert!(c1.detected(), "drop/duplicate must skew the digests");
        // Byte-determinism: the same site re-rolls identically.
        let (r2, c2) = sim.run_faulty(&w, &a, &injector, site);
        assert_eq!(r1, r2);
        assert_eq!(c1, c2);
        // A different attempt re-rolls the fault pattern.
        let retry_site = FaultSite { attempt: 1, ..site };
        let (_, c3) = sim.run_faulty(&w, &a, &injector, retry_site);
        assert_eq!(c3.expected_digest, c1.expected_digest);
        assert_ne!(
            (c3.injected, c3.actual_digest),
            (c1.injected, c1.actual_digest),
            "attempt must be part of the fault site"
        );
    }

    #[test]
    fn deeper_fifo_never_hurts() {
        let (w, a) = random_streams(13, 32, 48, 2, true);
        let mut shallow_cfg = cfg(16);
        shallow_cfg.fifo_depth = 1;
        let mut deep_cfg = cfg(16);
        deep_cfg.fifo_depth = 64;
        let shallow = TileSim::new(&shallow_cfg).run(&w, &a);
        let deep = TileSim::new(&deep_cfg).run(&w, &a);
        assert!(deep.stall_cycles <= shallow.stall_cycles);
        assert!(deep.cycles <= shallow.cycles);
    }
}
