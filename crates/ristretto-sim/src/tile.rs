//! Cycle-level simulation of one Ristretto compute tile (§IV-C).
//!
//! Models the Atomizer → Atomputer → Atomulator → accumulate-buffer
//! pipeline per cycle:
//!
//! * the Atomizer emits one non-zero activation atom per cycle (zero values
//!   never reach it, so it never starves);
//! * the Atomputer is a systolic chain of `N` multipliers holding one
//!   static weight atom each; an activation atom enters at the left and
//!   shifts right one lane per cycle, so lane `j` processes atom `s − j`
//!   in step `s`; ping-pong weight registers overlap a segment's drain
//!   with the next segment's fill (only the final drain is exposed);
//! * on an activation's last atom, each lane delivers its accumulated
//!   partial to the Atomulator, which routes it through a crossbar to the
//!   accumulate-buffer bank of the weight atom's output channel; each bank
//!   retires one write per cycle, excess queues in a FIFO of configurable
//!   depth, and a full FIFO stalls the pipeline.
//!
//! The channel-first stream shuffle (§IV-C2) makes concurrent deliveries
//! target distinct banks, which is why the shuffled order shows (near-)zero
//! stalls while a naive order backs up — the test suite demonstrates both.

use crate::config::{ConfigError, RistrettoConfig};
use atomstream::cycles::ideal_steps;
use atomstream::stream::{ActivationStream, WeightStream};
use serde::{Deserialize, Serialize};

/// Counters produced by a cycle-level tile run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileReport {
    /// Total cycles including stalls.
    pub cycles: u64,
    /// Cycles lost to crossbar/FIFO backpressure.
    pub stall_cycles: u64,
    /// Effectual atom multiplications.
    pub atom_mults: u64,
    /// Deliveries routed to the accumulate buffer.
    pub deliveries: u64,
    /// Same-cycle deliveries that collided on one accumulate-buffer bank
    /// (each collision queues one entry in that bank's FIFO).
    pub crossbar_conflicts: u64,
    /// Deepest FIFO occupancy observed.
    pub max_queue: usize,
}

impl TileReport {
    /// Ideal (stall-free) cycles.
    pub fn ideal_cycles(&self) -> u64 {
        self.cycles - self.stall_cycles
    }
}

/// A cycle-level compute-tile simulator.
#[derive(Debug, Clone)]
pub struct TileSim {
    multipliers: usize,
    fifo_depth: usize,
    banks: usize,
}

impl TileSim {
    /// Builds a tile simulator from an architecture configuration.
    ///
    /// # Panics
    /// Panics on an invalid configuration; use [`TileSim::try_new`] for a
    /// fallible variant.
    pub fn new(cfg: &RistrettoConfig) -> Self {
        Self::try_new(cfg).expect("valid Ristretto configuration")
    }

    /// Fallible variant of [`TileSim::new`].
    ///
    /// # Errors
    /// Returns the [`ConfigError`] describing the inconsistency.
    pub fn try_new(cfg: &RistrettoConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Self {
            multipliers: cfg.multipliers,
            fifo_depth: cfg.fifo_depth,
            banks: cfg.multipliers, // §IV-C4: bank count = static stream length
        })
    }

    /// Runs one channel's static weight stream against one tile's
    /// activation stream, cycle by cycle.
    pub fn run(&self, weights: &WeightStream, acts: &ActivationStream) -> TileReport {
        let mut report = TileReport::default();
        let t = acts.len();
        let s = weights.len();
        if t == 0 || s == 0 {
            return report;
        }

        let mut queues = vec![0usize; self.banks];
        // Per-cycle bank-collision detection without clearing a bitmap
        // every step: a bank "has a delivery this cycle" iff its stamp
        // equals the current step's stamp.
        let mut bank_stamp = vec![0u64; self.banks];
        let mut stamp = 0u64;
        let segments: Vec<_> = weights.entries().chunks(self.multipliers).collect();
        let last_seg = segments.len() - 1;

        // Every segment runs its full t + L - 1 systolic steps, but the
        // drain of segment i overlaps the fill of segment i+1 (ping-pong
        // weight registers), so only the last segment's drain costs time.
        let mut overlapped: u64 = 0;
        for (seg_idx, segment) in segments.iter().enumerate() {
            if seg_idx != last_seg {
                overlapped += segment.len() as u64 - 1;
            }
            for step in 0..(t + segment.len() - 1) {
                report.cycles += 1;
                stamp += 1;
                // Lane j processes activation atom (step - j).
                let mut delivered_this_cycle: Vec<usize> = Vec::new();
                for (j, w) in segment.iter().enumerate() {
                    let Some(ai) = step.checked_sub(j) else { break };
                    if ai >= t {
                        continue;
                    }
                    let a = &acts.entries()[ai];
                    report.atom_mults += 1;
                    if a.atom.last {
                        let bank = w.out_ch as usize % self.banks;
                        if bank_stamp[bank] == stamp {
                            report.crossbar_conflicts += 1;
                        } else {
                            bank_stamp[bank] = stamp;
                        }
                        delivered_this_cycle.push(bank);
                        report.deliveries += 1;
                    }
                }
                // Crossbar + banks: each bank retires one write per cycle;
                // surplus sits in FIFOs; overflow stalls the pipe until the
                // deepest queue drains back to the FIFO depth.
                for q in queues.iter_mut() {
                    *q = q.saturating_sub(1);
                }
                for bank in delivered_this_cycle {
                    queues[bank] += 1;
                }
                let deepest = queues.iter().copied().max().unwrap_or(0);
                report.max_queue = report.max_queue.max(deepest);
                if deepest > self.fifo_depth {
                    let stall = (deepest - self.fifo_depth) as u64;
                    report.stall_cycles += stall;
                    report.cycles += stall;
                    for q in queues.iter_mut() {
                        *q = q.saturating_sub(stall as usize);
                    }
                }
            }
        }
        // Account the trailing drain of in-flight FIFO entries, then credit
        // the overlapped segment drains back.
        let residue = queues.iter().copied().max().unwrap_or(0) as u64;
        report.cycles += residue;
        report.cycles -= overlapped;
        obs::record(obs::Event::AtomputerCycles, report.cycles);
        obs::record(obs::Event::AtomputerAtomMults, report.atom_mults);
        obs::record(obs::Event::AtomulatorDeliveries, report.deliveries);
        obs::record(
            obs::Event::AtomulatorCrossbarConflicts,
            report.crossbar_conflicts,
        );
        obs::record(obs::Event::AtomulatorStallCycles, report.stall_cycles);
        obs::record(obs::Event::AtomulatorFifoHighwater, report.max_queue as u64);
        report
    }

    /// Ideal step count for this tile per the paper's Eq 3.
    pub fn ideal(&self, t: u64, s: u64) -> u64 {
        ideal_steps(t, s, self.multipliers as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomstream::atom::AtomBits;
    use atomstream::compress::{compress_activations, compress_weights, compress_weights_naive};
    use atomstream::flatten::{FlatActivation, FlatWeight};
    use qnn::rng::SeededRng;

    fn random_streams(
        seed: u64,
        n_acts: usize,
        n_weights: usize,
        out_chans: u16,
        shuffled: bool,
    ) -> (WeightStream, ActivationStream) {
        let mut rng = SeededRng::new(seed);
        let mut fa = Vec::new();
        for i in 0..n_acts {
            let v = 1 + rng.below(255) as i32;
            fa.push(FlatActivation {
                value: v,
                x: (i % 8) as u16,
                y: (i / 8 % 8) as u16,
            });
        }
        let mut fw = Vec::new();
        for _ in 0..n_weights {
            let m = 1 + rng.below(127) as i32;
            let v = if rng.bernoulli(0.5) { -m } else { m };
            fw.push(FlatWeight {
                value: v,
                x: rng.below(3) as u16,
                y: rng.below(3) as u16,
                out_ch: rng.below(out_chans as usize) as u16,
            });
        }
        let acts = compress_activations(&fa, 8, AtomBits::B2).unwrap();
        let weights = if shuffled {
            compress_weights(&fw, 8, AtomBits::B2).unwrap()
        } else {
            compress_weights_naive(&fw, 8, AtomBits::B2).unwrap()
        };
        (weights, acts)
    }

    fn cfg(multipliers: usize) -> RistrettoConfig {
        RistrettoConfig {
            multipliers,
            ..RistrettoConfig::paper_default()
        }
    }

    #[test]
    fn matches_eq3_when_stall_free() {
        let (w, a) = random_streams(3, 20, 40, 32, true);
        let sim = TileSim::new(&cfg(32));
        let r = sim.run(&w, &a);
        let ideal = sim.ideal(a.len() as u64, w.len() as u64);
        assert_eq!(r.atom_mults, a.len() as u64 * w.len() as u64);
        // Stall-free cycles equal Eq 3 up to the FIFO residue drain.
        assert!(r.ideal_cycles() >= ideal);
        assert!(
            r.ideal_cycles() <= ideal + sim.banks as u64,
            "{} vs {ideal}",
            r.ideal_cycles()
        );
    }

    #[test]
    fn shuffled_stream_stalls_no_more_than_naive() {
        // Many weight atoms on few output channels maximize contention.
        let (w_shuf, a) = random_streams(7, 24, 64, 4, true);
        let (w_naive, _) = random_streams(7, 24, 64, 4, false);
        let sim = TileSim::new(&cfg(16));
        let rs = sim.run(&w_shuf, &a);
        let rn = sim.run(&w_naive, &a);
        assert_eq!(rs.atom_mults, rn.atom_mults);
        assert_eq!(rs.deliveries, rn.deliveries);
        assert!(
            rs.stall_cycles <= rn.stall_cycles,
            "{} vs {}",
            rs.stall_cycles,
            rn.stall_cycles
        );
        // The channel-first shuffle spreads same-cycle deliveries across
        // banks, so it can only reduce crossbar collisions.
        assert!(
            rs.crossbar_conflicts <= rn.crossbar_conflicts,
            "{} vs {}",
            rs.crossbar_conflicts,
            rn.crossbar_conflicts
        );
    }

    #[test]
    fn contended_banks_report_crossbar_conflicts() {
        // A single output channel forces every delivery into one bank, so
        // any cycle with two deliveries is a conflict.
        let (w, a) = random_streams(17, 24, 48, 1, true);
        let sim = TileSim::new(&cfg(16));
        let r = sim.run(&w, &a);
        assert!(r.crossbar_conflicts > 0, "expected bank collisions");
        // Each conflict queues one entry; none can exceed the delivery count.
        assert!(r.crossbar_conflicts < r.deliveries);
    }

    #[test]
    fn empty_streams_cost_nothing() {
        let sim = TileSim::new(&cfg(8));
        let (w, _) = random_streams(1, 4, 4, 2, true);
        let empty_a = ActivationStream::default();
        assert_eq!(sim.run(&w, &empty_a), TileReport::default());
        let (_, a) = random_streams(1, 4, 4, 2, true);
        let empty_w = WeightStream::default();
        assert_eq!(sim.run(&empty_w, &a), TileReport::default());
    }

    #[test]
    fn deliveries_equal_values_times_weight_atoms() {
        let (w, a) = random_streams(11, 16, 24, 32, true);
        let sim = TileSim::new(&cfg(32));
        let r = sim.run(&w, &a);
        assert_eq!(r.deliveries, a.value_count() as u64 * w.len() as u64);
    }

    #[test]
    fn deeper_fifo_never_hurts() {
        let (w, a) = random_streams(13, 32, 48, 2, true);
        let mut shallow_cfg = cfg(16);
        shallow_cfg.fifo_depth = 1;
        let mut deep_cfg = cfg(16);
        deep_cfg.fifo_depth = 64;
        let shallow = TileSim::new(&shallow_cfg).run(&w, &a);
        let deep = TileSim::new(&deep_cfg).run(&w, &a);
        assert!(deep.stall_cycles <= shallow.stall_cycles);
        assert!(deep.cycles <= shallow.cycles);
    }
}
