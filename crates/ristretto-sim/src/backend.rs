//! [`Backend`] implementations for the Ristretto simulators.
//!
//! The workspace-wide [`Backend`] trait (defined next to the six baseline
//! machines in [`baselines::report`]) lets experiments sweep heterogeneous
//! machine sets as `&dyn Backend`. This module plugs both Ristretto models
//! into that interface:
//!
//! * [`RistrettoSim`] — the analytic Eq 3–5 model, the configuration the
//!   paper's figures are built from;
//! * [`CycleRistretto`] — a cycle-level proxy that executes a downscaled
//!   materialized layer on the multi-tile [`CoreSim`] and rescales by the
//!   analytic work ratio.

use crate::analytic::RistrettoSim;
use crate::area::AreaBreakdown;
use crate::config::{ConfigError, RistrettoConfig};
use crate::core::CoreSim;
use baselines::report::{Backend, BaselineLayerReport, BaselineNetworkReport};
use hwmodel::ComponentLib;
use qnn::layers::ConvLayer;
use qnn::workload::{
    ActivationProfile, LayerStats, NetworkStats, SyntheticLayer, WeightProfile, WorkloadGen,
};

impl Backend for RistrettoSim {
    fn name(&self) -> &'static str {
        if self.config().sparse {
            "Ristretto"
        } else {
            "Ristretto-ns"
        }
    }

    fn area_mm2(&self) -> f64 {
        AreaBreakdown::from_config(self.config(), &ComponentLib::n28()).total()
    }

    fn simulate_layer(&self, stats: &LayerStats) -> BaselineLayerReport {
        let r = RistrettoSim::simulate_layer(self, stats, false);
        BaselineLayerReport {
            name: r.name,
            cycles: r.cycles,
            effectual_ops: r.atom_mults,
            dram_bits: r.dram_bits,
            energy: r.energy,
        }
    }

    /// Overrides the default so the paper's first-layer rule (§IV-E: the
    /// input layer is never balanced) survives the trait boundary — the
    /// cycle totals stay byte-identical to the inherent
    /// [`RistrettoSim::simulate_network`].
    fn simulate_network(&self, net: &NetworkStats) -> BaselineNetworkReport {
        let r = RistrettoSim::simulate_network(self, net);
        BaselineNetworkReport {
            accelerator: Backend::name(self).to_string(),
            network: r.network,
            precision: r.precision,
            layers: r
                .layers
                .into_iter()
                .map(|l| BaselineLayerReport {
                    name: l.name,
                    cycles: l.cycles,
                    effectual_ops: l.atom_mults,
                    dram_bits: l.dram_bits,
                    energy: l.energy,
                })
                .collect(),
        }
    }
}

/// Cycle-level Ristretto behind the [`Backend`] interface.
///
/// Benchmark layers are statistical (only their sparsity profiles exist,
/// not trained tensors), so this backend materializes a *downscaled proxy*
/// of each layer — same kernel geometry and sparsity profile, channel and
/// spatial extents capped — executes it on the cycle-level multi-tile
/// [`CoreSim`], and rescales the measured makespan by the ratio of the
/// analytic model's cycle estimates for the full and proxy layers. Energy
/// and DRAM traffic come from the analytic model, which prices the full
/// layer directly.
///
/// This is an approximation (documented, and deliberately excluded from
/// the golden-stats experiments): it trades exactness for cycle-level
/// fidelity effects — FIFO backpressure, crossbar conflicts, systolic
/// fill/drain — that the closed form drops.
#[derive(Debug, Clone)]
pub struct CycleRistretto {
    core: CoreSim,
    analytic: RistrettoSim,
}

/// Proxy-layer caps: large enough to exercise multi-tile balancing, small
/// enough that materializing one layer per benchmark layer stays cheap.
const PROXY_MAX_CHANNELS: usize = 8;
const PROXY_MAX_EXTENT: usize = 16;

impl CycleRistretto {
    /// Builds the cycle-level backend from an architecture configuration.
    ///
    /// # Errors
    /// Returns the [`ConfigError`] describing an inconsistency.
    pub fn try_new(cfg: RistrettoConfig) -> Result<Self, ConfigError> {
        Ok(Self {
            core: CoreSim::try_new(cfg)?,
            analytic: RistrettoSim::try_new(cfg)?,
        })
    }

    /// Deterministic per-layer seed: a function of the layer's geometry
    /// only, so repeated runs (and different thread counts) agree.
    fn proxy_seed(layer: &ConvLayer) -> u64 {
        let mut seed = 0x5eed_0001u64;
        for dim in [
            layer.in_channels,
            layer.out_channels,
            layer.kernel,
            layer.stride,
            layer.in_h,
            layer.in_w,
        ] {
            seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(dim as u64);
        }
        seed
    }

    /// The downscaled proxy of a benchmark layer.
    fn proxy_layer(layer: &ConvLayer) -> ConvLayer {
        ConvLayer::conv(
            &layer.name,
            layer.in_channels.min(PROXY_MAX_CHANNELS),
            layer.out_channels.min(PROXY_MAX_CHANNELS),
            layer.kernel,
            layer.stride,
            layer.padding,
            layer.in_h.min(PROXY_MAX_EXTENT).max(layer.kernel),
            layer.in_w.min(PROXY_MAX_EXTENT).max(layer.kernel),
        )
        .expect("downscaling preserves geometry validity")
    }
}

impl Backend for CycleRistretto {
    fn name(&self) -> &'static str {
        "Ristretto (cycle)"
    }

    fn area_mm2(&self) -> f64 {
        AreaBreakdown::from_config(self.analytic.config(), &ComponentLib::n28()).total()
    }

    fn simulate_layer(&self, stats: &LayerStats) -> BaselineLayerReport {
        let full = self.analytic.simulate_layer(stats, false);

        let proxy = Self::proxy_layer(&stats.layer);
        let mut gen = WorkloadGen::new(Self::proxy_seed(&stats.layer));
        let s = SyntheticLayer::generate(
            &proxy,
            &WeightProfile::benchmark(stats.w_bits),
            &ActivationProfile::new(stats.a_bits),
            &mut gen,
        );
        let atom_bits = self.analytic.config().atom_bits;
        let measured = LayerStats::measure(
            &proxy,
            &s.fmap,
            &s.kernels,
            stats.a_bits,
            stats.w_bits,
            atom_bits.bits(),
        );
        let proxy_analytic = self.analytic.simulate_layer(&measured, false);
        let report = self
            .core
            .run_layer(
                &s.fmap,
                &s.kernels,
                stats.a_bits.bits(),
                stats.w_bits.bits(),
            )
            .expect("proxy layer streams are well-formed");

        // Rescale the measured makespan to the full layer via the analytic
        // model's estimate of both.
        let scale = if proxy_analytic.cycles == 0 {
            1.0
        } else {
            full.cycles as f64 / proxy_analytic.cycles as f64
        };
        let cycles = ((report.makespan as f64) * scale).round().max(1.0) as u64;

        BaselineLayerReport {
            name: full.name,
            cycles,
            effectual_ops: full.atom_mults,
            dram_bits: full.dram_bits,
            energy: full.energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::models::NetworkId;
    use qnn::quant::BitWidth;
    use qnn::rng::SeededRng;
    use qnn::workload::PrecisionPolicy;

    fn stats() -> NetworkStats {
        NetworkStats::generate(
            NetworkId::AlexNet,
            PrecisionPolicy::Uniform(BitWidth::W4),
            2,
            11,
        )
    }

    #[test]
    fn analytic_backend_matches_inherent_model() {
        let sim = RistrettoSim::new(RistrettoConfig::paper_default());
        let net = stats();
        let inherent = RistrettoSim::simulate_network(&sim, &net);
        let via_trait = Backend::simulate_network(&sim, &net);
        assert_eq!(via_trait.accelerator, "Ristretto");
        assert_eq!(via_trait.total_cycles(), inherent.total_cycles());
        assert_eq!(via_trait.layers.len(), inherent.layers.len());
        for (b, l) in via_trait.layers.iter().zip(&inherent.layers) {
            assert_eq!(b.cycles, l.cycles);
            assert_eq!(b.effectual_ops, l.atom_mults);
            assert_eq!(b.dram_bits, l.dram_bits);
        }
    }

    #[test]
    fn non_sparse_variant_renames_itself() {
        let ns = RistrettoSim::new(RistrettoConfig::paper_default().non_sparse());
        assert_eq!(Backend::name(&ns), "Ristretto-ns");
    }

    #[test]
    fn backends_sweep_as_trait_objects() {
        let sim = RistrettoSim::new(RistrettoConfig::paper_default());
        let cycle = CycleRistretto::try_new(RistrettoConfig {
            tiles: 4,
            multipliers: 8,
            ..RistrettoConfig::paper_default()
        })
        .unwrap();
        let machines: Vec<&dyn Backend> = vec![&sim, &cycle];
        let layer = ConvLayer::conv("t", 8, 16, 3, 1, 1, 16, 16).unwrap();
        let mut rng = SeededRng::new(7);
        let ls = LayerStats::generate(
            &layer,
            &WeightProfile::benchmark(BitWidth::W4),
            &ActivationProfile::new(BitWidth::W8),
            2,
            &mut rng,
        );
        for m in machines {
            let r = m.simulate_layer(&ls);
            assert!(r.cycles > 0, "{} produced zero cycles", m.name());
            assert!(m.area_mm2() > 0.0);
        }
    }

    #[test]
    fn cycle_backend_is_deterministic() {
        let cfg = RistrettoConfig {
            tiles: 4,
            multipliers: 8,
            ..RistrettoConfig::paper_default()
        };
        let a = CycleRistretto::try_new(cfg).unwrap();
        let b = CycleRistretto::try_new(cfg).unwrap();
        let net = stats();
        assert_eq!(
            Backend::simulate_network(&a, &net),
            Backend::simulate_network(&b, &net)
        );
    }
}
