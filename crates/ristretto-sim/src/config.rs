//! Ristretto architecture configuration and the paper's experiment presets.

use atomstream::atom::AtomBits;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A structural inconsistency in a [`RistrettoConfig`].
///
/// Produced by [`RistrettoConfig::validate`] and surfaced by every fallible
/// simulator constructor (`try_new`) in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The tile count (`M`) is zero.
    ZeroTiles,
    /// The per-tile multiplier count (`N`) is zero.
    ZeroMultipliers,
    /// A feature-map tile extent is zero.
    ZeroTileExtent,
    /// The accumulator width lies outside the supported 16..=48 range.
    AccumulatorWidth(u8),
    /// An atom granularity outside the Fig 19 sweep (1/2/3 bits).
    UnsupportedGranularity(u8),
    /// A multi-core configuration with zero cores.
    ZeroCores,
    /// A fault-injection rate above 1 000 000 ppm (more than one fault per
    /// opportunity is meaningless).
    FaultRateOutOfRange(u32),
    /// A NoC link with zero bits per cycle cannot move traffic.
    ZeroLinkBandwidth,
    /// A NoC port FIFO with zero entries deadlocks on the first flit.
    ZeroNocFifoDepth,
    /// A hybrid fleet whose replica count does not divide the core count
    /// (or is zero): every replica group must get the same whole number of
    /// cores.
    InvalidReplicas {
        /// Requested replica-group count.
        replicas: usize,
        /// Fleet core count it must divide.
        cores: usize,
    },
    /// A serving configuration whose maximum batch size is zero — no
    /// dispatch could ever carry a request.
    ZeroMaxBatch,
    /// A serving queue with zero capacity rejects every request.
    ZeroQueueCapacity,
    /// A serving configuration with no tenants has nobody to schedule.
    NoTenants,
    /// A tenant whose fair-share weight is zero would starve forever.
    ZeroTenantWeight(usize),
    /// The SLO-class table does not cover every tenant (or names extras):
    /// the two tables are indexed by the same tenant ids.
    TenantClassCountMismatch {
        /// Entries in the SLO-class table.
        classes: usize,
        /// Entries in the tenant-weight table.
        tenants: usize,
    },
    /// A brownout high-water fraction outside 1..=1000 permille: zero
    /// would shed best-effort traffic on an empty queue, and more than
    /// 1000 can never fire.
    BrownoutOutOfRange(u16),
    /// A circuit breaker with a trip threshold but no cooldown would
    /// re-probe the faulted lane on the very next batch, defeating the
    /// open state.
    ZeroBreakerCooldown,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroTiles => write!(f, "tile count must be non-zero"),
            ConfigError::ZeroMultipliers => write!(f, "multiplier count must be non-zero"),
            ConfigError::ZeroTileExtent => {
                write!(f, "feature-map tile extents must be non-zero")
            }
            ConfigError::AccumulatorWidth(bits) => {
                write!(f, "accumulator width {bits} outside 16..=48")
            }
            ConfigError::UnsupportedGranularity(bits) => {
                write!(f, "Fig 19 evaluates 1/2/3-bit atoms, not {bits}")
            }
            ConfigError::ZeroCores => write!(f, "need at least one core"),
            ConfigError::FaultRateOutOfRange(ppm) => {
                write!(f, "fault rate {ppm} ppm exceeds 1000000 ppm")
            }
            ConfigError::ZeroLinkBandwidth => {
                write!(f, "NoC link bandwidth must be non-zero")
            }
            ConfigError::ZeroNocFifoDepth => {
                write!(f, "NoC port FIFO depth must be non-zero")
            }
            ConfigError::InvalidReplicas { replicas, cores } => {
                write!(
                    f,
                    "hybrid replica count {replicas} must be non-zero and divide {cores} cores"
                )
            }
            ConfigError::ZeroMaxBatch => {
                write!(f, "serving max batch size must be non-zero")
            }
            ConfigError::ZeroQueueCapacity => {
                write!(f, "serving queue capacity must be non-zero")
            }
            ConfigError::NoTenants => {
                write!(f, "serving configuration needs at least one tenant")
            }
            ConfigError::ZeroTenantWeight(tenant) => {
                write!(f, "tenant {tenant} has zero fair-share weight")
            }
            ConfigError::TenantClassCountMismatch { classes, tenants } => {
                write!(
                    f,
                    "SLO-class table has {classes} entries for {tenants} tenants"
                )
            }
            ConfigError::BrownoutOutOfRange(permille) => {
                write!(
                    f,
                    "brownout high-water {permille} permille outside 1..=1000"
                )
            }
            ConfigError::ZeroBreakerCooldown => {
                write!(f, "circuit breaker needs a non-zero cooldown to stay open")
            }
        }
    }
}

impl Error for ConfigError {}

/// Architecture parameters of a single-core Ristretto.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RistrettoConfig {
    /// Number of compute tiles (`M`).
    pub tiles: usize,
    /// Atom multipliers per compute tile (`N`, the static stream length;
    /// also the number of accumulate-buffer banks, §IV-C4).
    pub multipliers: usize,
    /// Atom granularity (2-bit default).
    pub atom_bits: AtomBits,
    /// Feature-map tile height used by the block COO-2D partitioning.
    pub tile_h: usize,
    /// Feature-map tile width.
    pub tile_w: usize,
    /// Input buffer capacity (KiB).
    pub input_buf_kb: usize,
    /// Weight buffer capacity (KiB).
    pub weight_buf_kb: usize,
    /// Output buffer capacity (KiB).
    pub output_buf_kb: usize,
    /// Accumulator width in bits (partial-sum precision).
    pub acc_bits: u8,
    /// Accumulate-buffer entries per bank (each of the `N` banks caches a
    /// slice of one output channel's tile; larger planes take multiple
    /// passes). The Table VI calibration point is 24 entries.
    pub accu_entries_per_bank: usize,
    /// Crossbar FIFO depth in the Atomulator.
    pub fifo_depth: usize,
    /// Whether sparse computation is enabled; `false` gives Ristretto-ns,
    /// the non-sparse variant used in the Bit Fusion comparison (§V-B).
    pub sparse: bool,
    /// Whether the w/a load balancer is enabled (§IV-E); the input layer is
    /// never balanced regardless.
    pub balancing: crate::balance::BalanceStrategy,
    /// Optional deterministic fault-injection campaign. `None` (the
    /// default) leaves every execution path byte-identical to a build
    /// without the faultsim layer.
    pub faults: Option<crate::fault::FaultConfig>,
}

impl RistrettoConfig {
    /// The paper's default single-core configuration (Table VI): 32 tiles,
    /// each with 32 2-bit multipliers; 1024 2-bit multipliers total.
    pub fn paper_default() -> Self {
        Self {
            tiles: 32,
            multipliers: 32,
            atom_bits: AtomBits::B2,
            tile_h: 8,
            tile_w: 8,
            input_buf_kb: 64,
            weight_buf_kb: 192,
            output_buf_kb: 96,
            acc_bits: 24,
            accu_entries_per_bank: 24,
            fifo_depth: 4,
            sparse: true,
            balancing: crate::balance::BalanceStrategy::WeightActivation,
            faults: None,
        }
    }

    /// The equal-compute-area configuration used against Laconic and the
    /// equal-peak-BitOps configuration used against SparTen (§V-C/V-D):
    /// 32 tiles × 16 2-bit multipliers.
    pub fn half_width() -> Self {
        Self {
            multipliers: 16,
            ..Self::paper_default()
        }
    }

    /// The non-sparse variant Ristretto-ns (§V-B).
    pub fn non_sparse(self) -> Self {
        Self {
            sparse: false,
            ..self
        }
    }

    /// Fig 19 granularity ablation presets: same BitOps/cycle across
    /// 1/2/3-bit atoms via 64/16/7 multipliers per tile.
    ///
    /// # Panics
    /// Panics for granularities other than 1, 2 or 3 bits; use
    /// [`RistrettoConfig::try_granularity`] for a fallible variant.
    pub fn granularity(bits: u8) -> Self {
        match Self::try_granularity(bits) {
            Ok(cfg) => cfg,
            Err(_) => panic!("Fig 19 evaluates 1/2/3-bit atoms, not {bits}"),
        }
    }

    /// Fallible variant of [`RistrettoConfig::granularity`].
    pub fn try_granularity(bits: u8) -> Result<Self, ConfigError> {
        let (atom_bits, multipliers) = match bits {
            1 => (AtomBits::B1, 64),
            2 => (AtomBits::B2, 16),
            3 => (AtomBits::B3, 7),
            other => return Err(ConfigError::UnsupportedGranularity(other)),
        };
        Ok(Self {
            atom_bits,
            multipliers,
            ..Self::paper_default()
        })
    }

    /// Total atom multipliers in the core.
    pub fn total_multipliers(&self) -> usize {
        self.tiles * self.multipliers
    }

    /// Peak BitOps per cycle: each multiplier does `atom_bits²` bit
    /// operations per cycle.
    pub fn peak_bitops_per_cycle(&self) -> u64 {
        let b = self.atom_bits.bits() as u64;
        (self.total_multipliers() as u64) * b * b
    }

    /// Returns a copy with a different tile count.
    pub fn with_tiles(mut self, tiles: usize) -> Self {
        self.tiles = tiles;
        self
    }

    /// Returns a copy with a different per-tile multiplier count.
    pub fn with_multipliers(mut self, multipliers: usize) -> Self {
        self.multipliers = multipliers;
        self
    }

    /// Returns a copy with a different balancing strategy.
    pub fn with_balancing(mut self, balancing: crate::balance::BalanceStrategy) -> Self {
        self.balancing = balancing;
        self
    }

    /// Returns a copy with a fault-injection campaign attached (or
    /// detached with `None`).
    pub fn with_faults(mut self, faults: Option<crate::fault::FaultConfig>) -> Self {
        self.faults = faults;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Never panics; returns a typed [`ConfigError`] on inconsistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.tiles == 0 {
            return Err(ConfigError::ZeroTiles);
        }
        if self.multipliers == 0 {
            return Err(ConfigError::ZeroMultipliers);
        }
        if self.tile_h == 0 || self.tile_w == 0 {
            return Err(ConfigError::ZeroTileExtent);
        }
        if self.acc_bits < 16 || self.acc_bits > 48 {
            return Err(ConfigError::AccumulatorWidth(self.acc_bits));
        }
        crate::fault::validate_config(self)?;
        Ok(())
    }
}

impl Default for RistrettoConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration of a sharded multi-core fleet (Fig 7): how many cores,
/// how the network is partitioned across them, the interconnect they
/// exchange activations over, and an optional core-death campaign.
///
/// Validated as a whole by [`FleetConfig::validate`]; every fallible fleet
/// constructor surfaces the same typed [`ConfigError`]s as the single-core
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of Ristretto cores behind the shared I/O interface.
    pub cores: usize,
    /// How work is partitioned across the cores.
    pub strategy: crate::fleet::ShardStrategy,
    /// The deterministic interconnect model activations travel over.
    pub noc: crate::noc::NocConfig,
    /// Optional deterministic core-death campaign; `None` (the default)
    /// leaves the run byte-identical to a build without the fault layer.
    pub core_deaths: Option<crate::fault::CoreDeathConfig>,
}

impl FleetConfig {
    /// A fleet of `cores` under the given strategy with the default NoC.
    pub fn new(cores: usize, strategy: crate::fleet::ShardStrategy) -> Self {
        Self {
            cores,
            strategy,
            noc: crate::noc::NocConfig::paper_default(),
            core_deaths: None,
        }
    }

    /// Returns a copy with a different NoC model.
    pub fn with_noc(mut self, noc: crate::noc::NocConfig) -> Self {
        self.noc = noc;
        self
    }

    /// Returns a copy with a core-death campaign attached (or detached
    /// with `None`).
    pub fn with_core_deaths(mut self, deaths: Option<crate::fault::CoreDeathConfig>) -> Self {
        self.core_deaths = deaths;
        self
    }

    /// Cores per replica group: the whole fleet for [`OutputChannel`],
    /// one for [`Batch`], `cores / replicas` for [`Hybrid`].
    ///
    /// [`OutputChannel`]: crate::fleet::ShardStrategy::OutputChannel
    /// [`Batch`]: crate::fleet::ShardStrategy::Batch
    /// [`Hybrid`]: crate::fleet::ShardStrategy::Hybrid
    pub fn group_size(&self) -> usize {
        match self.strategy {
            crate::fleet::ShardStrategy::Batch => 1,
            crate::fleet::ShardStrategy::OutputChannel => self.cores,
            crate::fleet::ShardStrategy::Hybrid(replicas) => self.cores / replicas.max(1),
        }
    }

    /// Number of replica groups (inputs processed concurrently).
    pub fn groups(&self) -> usize {
        self.cores / self.group_size().max(1)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Never panics; returns a typed [`ConfigError`] on inconsistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        if let crate::fleet::ShardStrategy::Hybrid(replicas) = self.strategy {
            if replicas == 0 || !self.cores.is_multiple_of(replicas) {
                return Err(ConfigError::InvalidReplicas {
                    replicas,
                    cores: self.cores,
                });
            }
        }
        self.noc.validate()?;
        if let Some(d) = self.core_deaths {
            if d.rate_ppm > crate::fault::PPM {
                return Err(ConfigError::FaultRateOutOfRange(d.rate_ppm));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_1024_multipliers() {
        let c = RistrettoConfig::paper_default();
        assert_eq!(c.total_multipliers(), 1024);
        assert_eq!(c.peak_bitops_per_cycle(), 4096);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn granularity_presets_match_bitops() {
        let b1 = RistrettoConfig::granularity(1);
        let b2 = RistrettoConfig::granularity(2);
        let b3 = RistrettoConfig::granularity(3);
        assert_eq!(b1.peak_bitops_per_cycle(), 32 * 64);
        assert_eq!(b2.peak_bitops_per_cycle(), 32 * 64);
        assert_eq!(b3.peak_bitops_per_cycle(), 32 * 63);
    }

    #[test]
    #[should_panic(expected = "Fig 19")]
    fn granularity_rejects_other_widths() {
        let _ = RistrettoConfig::granularity(4);
    }

    #[test]
    fn non_sparse_flag() {
        let c = RistrettoConfig::paper_default().non_sparse();
        assert!(!c.sparse);
    }

    #[test]
    fn validation_yields_typed_errors() {
        assert_eq!(
            RistrettoConfig::paper_default().with_tiles(0).validate(),
            Err(ConfigError::ZeroTiles)
        );
        assert_eq!(
            RistrettoConfig::paper_default()
                .with_multipliers(0)
                .validate(),
            Err(ConfigError::ZeroMultipliers)
        );
        let mut wide = RistrettoConfig::paper_default();
        wide.acc_bits = 64;
        assert_eq!(wide.validate(), Err(ConfigError::AccumulatorWidth(64)));
        assert_eq!(
            RistrettoConfig::try_granularity(4).unwrap_err(),
            ConfigError::UnsupportedGranularity(4)
        );
        assert_eq!(
            ConfigError::UnsupportedGranularity(4).to_string(),
            "Fig 19 evaluates 1/2/3-bit atoms, not 4"
        );
    }

    #[test]
    fn fault_rates_are_validated() {
        let ok = RistrettoConfig::paper_default()
            .with_faults(Some(crate::fault::FaultConfig::uniform(1, 1_000_000)));
        assert!(ok.validate().is_ok());
        let bad = RistrettoConfig::paper_default()
            .with_faults(Some(crate::fault::FaultConfig::uniform(1, 1_000_001)));
        assert_eq!(
            bad.validate(),
            Err(ConfigError::FaultRateOutOfRange(1_000_001))
        );
        assert!(ConfigError::FaultRateOutOfRange(1_000_001)
            .to_string()
            .contains("1000001"));
    }

    #[test]
    fn validation_catches_zeroes() {
        assert!(RistrettoConfig::paper_default()
            .with_tiles(0)
            .validate()
            .is_err());
        assert!(RistrettoConfig::paper_default()
            .with_multipliers(0)
            .validate()
            .is_err());
    }
}
