//! Functional multi-layer inference through the condensed streaming
//! computation.
//!
//! Chains CSC convolutions with the PPU between layers (ReLU, requantize,
//! compress, count statistics) and optional pooling — the full §IV
//! workflow at the functional level. Every layer is checked against the
//! dense reference in the test suite; the collected per-layer traces carry
//! exactly the statistics the hardware's balancer would see.

use atomstream::conv_csc::{CscConfig, CscStats};
use atomstream::error::AtomError;
use qnn::conv::ConvGeometry;
use qnn::pool::{pool2d, PoolKind};
use qnn::quant::BitWidth;
use qnn::tensor::{Tensor3, Tensor4};
use serde::{Deserialize, Serialize};

/// One pipeline stage: a convolution plus its post-processing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineLayer {
    /// Layer name for reporting.
    pub name: String,
    /// The (quantized) kernels.
    pub kernels: Tensor4,
    /// Stride/padding.
    pub geom: ConvGeometry,
    /// Weight bit-width.
    pub w_bits: BitWidth,
    /// Input activation bit-width.
    pub a_bits: BitWidth,
    /// Requantization shift applied by the PPU.
    pub requant_shift: u32,
    /// Output activation bit-width after the PPU.
    pub out_bits: u8,
    /// Optional pooling after the PPU: `(kind, window, stride, padding)`.
    pub pool: Option<(PoolKind, usize, usize, usize)>,
}

/// Per-layer execution record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTrace {
    /// Layer name.
    pub name: String,
    /// CSC work counters.
    pub stats: CscStats,
    /// Output non-zero values per channel (PPU statistic).
    pub out_values_per_channel: Vec<u64>,
    /// Output non-zero atoms per channel (PPU statistic — next layer's
    /// balancing input).
    pub out_atoms_per_channel: Vec<u64>,
}

/// A functional CSC inference pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionalPipeline {
    layers: Vec<PipelineLayer>,
    cfg: CscConfig,
}

impl FunctionalPipeline {
    /// Builds a pipeline over the given layers with a shared CSC
    /// configuration.
    pub fn new(layers: Vec<PipelineLayer>, cfg: CscConfig) -> Self {
        Self { layers, cfg }
    }

    /// The layer list.
    pub fn layers(&self) -> &[PipelineLayer] {
        &self.layers
    }

    /// Runs inference, returning the final activation tensor and per-layer
    /// traces.
    ///
    /// Each call compiles every layer's static weight stream transiently
    /// and discards it afterwards; [`crate::engine::compile`] hoists that
    /// work out of the loop and amortizes it across inputs — both paths
    /// share one layer executor, so their results are identical.
    ///
    /// # Errors
    /// Propagates CSC and geometry errors from any stage.
    pub fn run(&self, input: &Tensor3) -> Result<(Tensor3, Vec<LayerTrace>), AtomError> {
        let mut act = input.clone();
        let mut traces = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (next, trace) = crate::engine::compile_and_execute_layer(layer, &self.cfg, &act)?;
            act = next;
            traces.push(trace);
        }
        Ok((act, traces))
    }

    /// The dense reference path: identical math through
    /// [`qnn::conv::conv2d`], used for verification.
    ///
    /// # Errors
    /// Propagates geometry errors.
    pub fn run_dense_reference(&self, input: &Tensor3) -> Result<Tensor3, AtomError> {
        let mut act = input.clone();
        for layer in &self.layers {
            let acc = qnn::conv::conv2d(&act, &layer.kernels, layer.geom)?;
            let requant = acc.requantize_relu(layer.requant_shift, layer.out_bits);
            act = match layer.pool {
                Some((kind, window, stride, padding)) => {
                    pool2d(&requant, kind, window, stride, padding)?
                }
                None => requant,
            };
        }
        Ok(act)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};

    fn three_layer_pipeline(seed: u64) -> (FunctionalPipeline, Tensor3) {
        let mut gen = WorkloadGen::new(seed);
        let input = gen
            .activations(3, 16, 16, &ActivationProfile::new(BitWidth::W8))
            .unwrap();
        let wp = WeightProfile::benchmark(BitWidth::W4);
        let layers = vec![
            PipelineLayer {
                name: "conv1".into(),
                kernels: gen.weights(8, 3, 3, 3, &wp).unwrap(),
                geom: ConvGeometry::unit_stride(1),
                w_bits: BitWidth::W4,
                a_bits: BitWidth::W8,
                requant_shift: 4,
                out_bits: 8,
                pool: Some((PoolKind::Max, 2, 2, 0)),
            },
            PipelineLayer {
                name: "conv2".into(),
                kernels: gen.weights(12, 8, 3, 3, &wp).unwrap(),
                geom: ConvGeometry::unit_stride(1),
                w_bits: BitWidth::W4,
                a_bits: BitWidth::W8,
                requant_shift: 5,
                out_bits: 8,
                pool: None,
            },
            PipelineLayer {
                name: "conv3".into(),
                kernels: gen.weights(4, 12, 1, 1, &wp).unwrap(),
                geom: ConvGeometry::default(),
                w_bits: BitWidth::W4,
                a_bits: BitWidth::W8,
                requant_shift: 3,
                out_bits: 8,
                pool: None,
            },
        ];
        (FunctionalPipeline::new(layers, CscConfig::default()), input)
    }

    #[test]
    fn csc_pipeline_matches_dense_reference_end_to_end() {
        for seed in [1u64, 2, 3] {
            let (p, input) = three_layer_pipeline(seed);
            let (csc_out, traces) = p.run(&input).unwrap();
            let dense_out = p.run_dense_reference(&input).unwrap();
            assert_eq!(csc_out, dense_out, "seed {seed}");
            assert_eq!(traces.len(), 3);
            assert!(traces.iter().all(|t| t.stats.intersect.atom_mults > 0));
        }
    }

    #[test]
    fn ppu_statistics_describe_next_layer_input() {
        let (p, input) = three_layer_pipeline(7);
        let (_, traces) = p.run(&input).unwrap();
        // conv2's input is conv1's pooled output; without pooling the PPU
        // counts would match the next layer's measured input exactly. For
        // conv3 (no pool on conv2) they must match.
        let conv2_trace = &traces[1];
        assert_eq!(conv2_trace.out_values_per_channel.len(), 12);
        let conv2_out = conv2_trace.out_values_per_channel.iter().sum::<u64>();
        // conv3 streams at most that many values; channels whose pruned
        // kernels are entirely zero are skipped outright.
        let conv3_acts = traces[2].stats.act_values;
        assert!(conv3_acts <= conv2_out, "{conv3_acts} > {conv2_out}");
        assert!(
            conv3_acts as f64 >= conv2_out as f64 * 0.7,
            "{conv3_acts} vs {conv2_out}"
        );
    }

    #[test]
    fn deeper_pipeline_stays_exact() {
        // Five chained 1x1/3x3 layers at mixed precisions.
        let mut gen = WorkloadGen::new(99);
        let input = gen
            .activations(4, 10, 10, &ActivationProfile::new(BitWidth::W4))
            .unwrap();
        let mut layers = Vec::new();
        let mut in_c = 4;
        for (i, (&k, &bits)) in [1usize, 3, 1, 3, 1]
            .iter()
            .zip(&[
                BitWidth::W2,
                BitWidth::W4,
                BitWidth::W8,
                BitWidth::W2,
                BitWidth::W4,
            ])
            .enumerate()
        {
            let out_c = 4 + i;
            layers.push(PipelineLayer {
                name: format!("l{i}"),
                kernels: gen
                    .weights(out_c, in_c, k, k, &WeightProfile::benchmark(bits))
                    .unwrap(),
                geom: ConvGeometry::unit_stride(k / 2),
                w_bits: bits,
                a_bits: BitWidth::W8,
                requant_shift: 3,
                out_bits: 8,
                pool: None,
            });
            in_c = out_c;
        }
        // First layer consumes 4-bit input; widths still declared W8-safe.
        let p = FunctionalPipeline::new(
            layers,
            CscConfig {
                tile_h: 4,
                tile_w: 4,
                ..CscConfig::default()
            },
        );
        let (a, _) = p.run(&input).unwrap();
        let b = p.run_dense_reference(&input).unwrap();
        assert_eq!(a, b);
    }
}
