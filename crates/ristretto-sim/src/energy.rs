//! Event pricing for the Ristretto simulators.
//!
//! Precomputes per-event energies from the configuration and the component
//! library so the analytic and cycle-level models can price their counters
//! consistently.

use crate::area::AreaBreakdown;
use crate::config::RistrettoConfig;
use hwmodel::{ComponentLib, EnergyCounter, SramMacro, TechNode};
use serde::{Deserialize, Serialize};

/// Metadata bits carried per compressed activation value in the block
/// COO-2D format: an (x, y) coordinate within the default 8×8 feature-map
/// tile (Fig 8). Kernel entries carry `2·⌈log2 k⌉` bits instead.
pub const COO_META_BITS: u64 = 6;

/// Coordinate metadata bits for one compressed kernel value of extent `k`.
pub fn kernel_meta_bits(k: usize) -> u64 {
    if k <= 1 {
        0
    } else {
        2 * (usize::BITS - (k - 1).leading_zeros()) as u64
    }
}

/// Per-event energy prices (pJ) for one Ristretto configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RistrettoEnergyModel {
    /// One atom multiplication (multiplier + decoupled shift + accumulate).
    pub atom_mult_pj: f64,
    /// One delivery through the Atomulator (address generation + crossbar +
    /// FIFO + accumulate-buffer write).
    pub delivery_pj: f64,
    /// One aggregation event (accumulate-buffer read + slice shift + output
    /// buffer write of one partial).
    pub aggregate_pj: f64,
    /// One Atomizer scan cycle.
    pub atomizer_pj: f64,
    /// Input-buffer read per bit.
    pub input_read_per_bit_pj: f64,
    /// Weight-buffer read per bit.
    pub weight_read_per_bit_pj: f64,
    /// Output-buffer write per bit.
    pub output_write_per_bit_pj: f64,
    /// Total core area (mm²), for leakage.
    pub area_mm2: f64,
    /// Technology node.
    pub tech: TechNode,
    /// Leakage power density copied from the library.
    leakage_mw_per_mm2: f64,
}

impl RistrettoEnergyModel {
    /// Builds the price table for `cfg`.
    pub fn new(cfg: &RistrettoConfig, lib: &ComponentLib, tech: TechNode) -> Self {
        let g = cfg.atom_bits.bits();
        let act_shift_options = cfg.atom_bits.slots(8);
        let prod_width = (2 * g + (act_shift_options - 1) * g).min(24);
        let acc_width = (prod_width + 2).min(cfg.acc_bits);

        // Deliveries and aggregations touch one small per-channel bank, not
        // the whole accumulate-buffer macro.
        let bank_bytes = (cfg.accu_entries_per_bank * cfg.acc_bits as usize * 2 / 8).max(1);
        let accu_bank = SramMacro::regfile(bank_bytes, cfg.acc_bits as u32);
        let input = SramMacro::new(cfg.input_buf_kb << 10, 128);
        let weight = SramMacro::new(cfg.weight_buf_kb << 10, 128);
        let output = SramMacro::new(cfg.output_buf_kb << 10, 128);

        Self {
            atom_mult_pj: lib.multiplier_energy(g)
                + lib.shifter_energy(prod_width, act_shift_options)
                + lib.accumulator_energy(acc_width),
            delivery_pj: lib.addr_gen_energy
                + lib.crossbar_energy(cfg.multipliers, cfg.acc_bits)
                + lib.fifo_energy(cfg.acc_bits)
                + accu_bank.write_energy_pj(cfg.acc_bits as u64),
            aggregate_pj: accu_bank.read_energy_pj(cfg.acc_bits as u64)
                + lib.shifter_energy(cfg.acc_bits, act_shift_options)
                // Aggregation writes are sequential, so the 128-bit output
                // port amortizes across partials: charge per bit.
                + output.write_energy_pj(128) / 128.0 * cfg.acc_bits as f64,
            atomizer_pj: lib.atomizer_energy,
            input_read_per_bit_pj: input.read_energy_pj(128) / 128.0,
            weight_read_per_bit_pj: weight.read_energy_pj(128) / 128.0,
            output_write_per_bit_pj: output.write_energy_pj(128) / 128.0,
            area_mm2: AreaBreakdown::from_config(cfg, lib).total(),
            tech,
            leakage_mw_per_mm2: lib.leakage_mw_per_mm2,
        }
    }

    /// Prices the work discarded by fault-detection rollbacks: every atom
    /// multiplication and Atomulator delivery of a rejected tile attempt
    /// burned real energy before the monitor fired, then had to be redone.
    /// Recorded into the compute bucket via [`EnergyCounter::rework`] and
    /// attributed to the `fault.retry_energy_fj` observability counter.
    pub fn price_retry_overhead(
        &self,
        counter: &mut EnergyCounter,
        wasted_atom_mults: u64,
        wasted_deliveries: u64,
    ) -> f64 {
        counter.rework(wasted_atom_mults, self.atom_mult_pj);
        counter.rework(wasted_deliveries, self.delivery_pj);
        let pj = wasted_atom_mults as f64 * self.atom_mult_pj
            + wasted_deliveries as f64 * self.delivery_pj;
        obs::record(obs::Event::FaultRetryEnergyFj, (pj * 1000.0).round() as u64);
        pj
    }

    /// Leakage energy (pJ) over `cycles` cycles of the whole core.
    pub fn leakage_pj(&self, cycles: u64) -> f64 {
        let watts = self.leakage_mw_per_mm2 * self.area_mm2 * 1e-3;
        let secs = cycles as f64 / (self.tech.freq_mhz as f64 * 1e6);
        watts * secs * 1e12
    }

    /// Prices a layer's event counts into a counter.
    #[allow(clippy::too_many_arguments)]
    pub fn price_layer(
        &self,
        counter: &mut EnergyCounter,
        atom_mults: u64,
        deliveries: u64,
        aggregations: u64,
        atomizer_cycles: u64,
        input_bits: u64,
        weight_bits: u64,
        output_bits: u64,
        dram_bits: u64,
        cycles: u64,
    ) {
        counter.compute(atom_mults, self.atom_mult_pj);
        counter.compute(deliveries, self.delivery_pj);
        counter.compute(aggregations, self.aggregate_pj);
        counter.compute(atomizer_cycles, self.atomizer_pj);
        counter.buffer(input_bits, self.input_read_per_bit_pj);
        counter.buffer(weight_bits, self.weight_read_per_bit_pj);
        counter.buffer(output_bits, self.output_write_per_bit_pj);
        counter.dram_bits(dram_bits);
        counter.leakage(self.leakage_pj(cycles));
        // Observability: attribute energy per component in integer
        // femtojoules. Each value is a pure function of this call's
        // arguments (no cross-call accumulation in floating point), so the
        // global counters stay bit-identical at any thread count.
        let fj = |pj: f64| (pj * 1000.0).round() as u64;
        obs::record(
            obs::Event::EnergyAtomMultFj,
            fj(atom_mults as f64 * self.atom_mult_pj),
        );
        obs::record(
            obs::Event::EnergyDeliveryFj,
            fj(deliveries as f64 * self.delivery_pj),
        );
        obs::record(
            obs::Event::EnergyAggregateFj,
            fj(aggregations as f64 * self.aggregate_pj),
        );
        obs::record(
            obs::Event::EnergyAtomizerFj,
            fj(atomizer_cycles as f64 * self.atomizer_pj),
        );
        obs::record(
            obs::Event::EnergyInputReadFj,
            fj(input_bits as f64 * self.input_read_per_bit_pj),
        );
        obs::record(
            obs::Event::EnergyWeightReadFj,
            fj(weight_bits as f64 * self.weight_read_per_bit_pj),
        );
        obs::record(
            obs::Event::EnergyOutputWriteFj,
            fj(output_bits as f64 * self.output_write_per_bit_pj),
        );
        obs::record(
            obs::Event::EnergyDramFj,
            fj(hwmodel::dram::dram_energy_pj(dram_bits)),
        );
        obs::record(obs::Event::EnergyLeakageFj, fj(self.leakage_pj(cycles)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RistrettoEnergyModel {
        RistrettoEnergyModel::new(
            &RistrettoConfig::paper_default(),
            &ComponentLib::n28(),
            TechNode::N28,
        )
    }

    #[test]
    fn atom_mult_is_cheap() {
        let m = model();
        // A 2-bit atom op should cost a small fraction of an 8-bit MAC.
        let mac8 = ComponentLib::n28().scalar_mac8_energy();
        assert!(
            m.atom_mult_pj < mac8 / 2.0,
            "{} vs {}",
            m.atom_mult_pj,
            mac8
        );
        assert!(m.atom_mult_pj > 0.0);
    }

    #[test]
    fn buffer_reads_cost_more_per_bit_than_atom_ops() {
        let m = model();
        assert!(m.input_read_per_bit_pj > 0.0);
        assert!(m.weight_read_per_bit_pj > 0.0);
    }

    #[test]
    fn leakage_scales_with_cycles() {
        let m = model();
        assert!((m.leakage_pj(2000) / m.leakage_pj(1000) - 2.0).abs() < 1e-9);
        assert_eq!(m.leakage_pj(0), 0.0);
    }

    #[test]
    fn retry_overhead_is_priced_into_compute() {
        let m = model();
        let mut c = EnergyCounter::new();
        let pj = m.price_retry_overhead(&mut c, 100, 10);
        assert!(pj > 0.0);
        let expected = 100.0 * m.atom_mult_pj + 10.0 * m.delivery_pj;
        assert!((pj - expected).abs() < 1e-9);
        assert!((c.breakdown().compute_pj - expected).abs() < 1e-9);
        assert_eq!(c.events(), 110);
        assert_eq!(m.price_retry_overhead(&mut EnergyCounter::new(), 0, 0), 0.0);
    }

    #[test]
    fn price_layer_populates_all_categories() {
        let m = model();
        let mut c = EnergyCounter::new();
        m.price_layer(&mut c, 100, 10, 5, 50, 1000, 2000, 500, 4000, 1000);
        let b = c.breakdown();
        assert!(b.compute_pj > 0.0);
        assert!(b.buffer_pj > 0.0);
        assert!(b.dram_pj > 0.0);
        assert!(b.leakage_pj > 0.0);
    }
}
