//! The post-processing unit (PPU).
//!
//! When a group of output feature maps lands in the output buffer, the PPU
//! (a) applies ReLU and requantization, (b) squeezes zero values out into
//! the block COO-2D format for the next layer or DRAM, and (c) counts each
//! output channel's non-zero atoms with an Atomizer-like scanner — the
//! statistic the w/a load balancer needs for the *next* layer (§IV-E).

use atomstream::atom::AtomBits;
use qnn::formats::coo::CooFeatureMap;
use qnn::sparsity::nonzero_atoms;
use qnn::tensor::{AccTensor3, Tensor3};
use serde::{Deserialize, Serialize};

/// PPU configuration: the requantization applied between layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostProcessor {
    /// Right-shift applied to accumulator values (the layer's output
    /// scale).
    pub requant_shift: u32,
    /// Output activation bit-width.
    pub out_bits: u8,
    /// Atom granularity used for the balancing statistics.
    pub atom_bits: AtomBits,
    /// Tile extents used for the COO-2D compression.
    pub tile_h: usize,
    /// Tile width.
    pub tile_w: usize,
}

/// Per-channel statistics the PPU hands to the balancer, plus the
/// compressed output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PpuOutput {
    /// The requantized activation tensor (next layer's input).
    pub activations: Tensor3,
    /// Compressed form (what actually moves to DRAM / the input buffer).
    pub compressed: CooFeatureMap,
    /// Non-zero values per output channel.
    pub values_per_channel: Vec<u64>,
    /// Non-zero atoms per output channel (the balancer's `T_i` for the
    /// next layer).
    pub atoms_per_channel: Vec<u64>,
}

impl PpuOutput {
    /// Total non-zero values.
    pub fn total_values(&self) -> u64 {
        self.values_per_channel.iter().sum()
    }

    /// Total non-zero atoms.
    pub fn total_atoms(&self) -> u64 {
        self.atoms_per_channel.iter().sum()
    }
}

impl PostProcessor {
    /// A PPU for 8-bit outputs with the default tiling.
    pub fn new(requant_shift: u32, out_bits: u8) -> Self {
        Self {
            requant_shift,
            out_bits,
            atom_bits: AtomBits::B2,
            tile_h: 8,
            tile_w: 8,
        }
    }

    /// Processes one layer's accumulated outputs.
    ///
    /// # Panics
    /// Panics when the configured tile extents are zero; use
    /// [`PostProcessor::try_process`] for a fallible variant.
    pub fn process(&self, acc: &AccTensor3) -> PpuOutput {
        self.try_process(acc).expect("non-zero tile extents")
    }

    /// Fallible variant of [`PostProcessor::process`].
    ///
    /// # Errors
    /// Returns an error when the configured COO-2D tile extents are zero.
    pub fn try_process(&self, acc: &AccTensor3) -> Result<PpuOutput, qnn::error::QnnError> {
        let activations = acc.requantize_relu(self.requant_shift, self.out_bits);
        let (c, _, _) = activations.shape();
        let mut values_per_channel = vec![0u64; c];
        let mut atoms_per_channel = vec![0u64; c];
        for ci in 0..c {
            for &v in activations.channel(ci) {
                if v != 0 {
                    values_per_channel[ci] += 1;
                    atoms_per_channel[ci] += nonzero_atoms(v, self.atom_bits.bits()) as u64;
                }
            }
        }
        let compressed = CooFeatureMap::from_tensor(&activations, self.tile_h, self.tile_w)?;
        Ok(PpuOutput {
            activations,
            compressed,
            values_per_channel,
            atoms_per_channel,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc_from(vals: &[i64], c: usize, h: usize, w: usize) -> AccTensor3 {
        let mut a = AccTensor3::zeros(c, h, w).unwrap();
        for (i, &v) in vals.iter().enumerate() {
            let x = i % w;
            let y = (i / w) % h;
            let ci = i / (w * h);
            a.set(ci, y, x, v);
        }
        a
    }

    #[test]
    fn relu_requant_and_counts() {
        // Channel 0: [-4, 8, 64, 0]; shift 2, 4-bit out -> [0, 2, 15(sat), 0].
        let acc = acc_from(&[-4, 8, 64, 0, 4, 4, 4, 4], 2, 2, 2);
        let ppu = PostProcessor {
            requant_shift: 2,
            out_bits: 4,
            ..PostProcessor::new(2, 4)
        };
        let out = ppu.process(&acc);
        assert_eq!(out.activations.channel(0), &[0, 2, 15, 0]);
        assert_eq!(out.activations.channel(1), &[1, 1, 1, 1]);
        assert_eq!(out.values_per_channel, vec![2, 4]);
        // atoms: 2 -> 1 atom, 15 -> 2 atoms; 1 -> 1 atom each.
        assert_eq!(out.atoms_per_channel, vec![3, 4]);
        assert_eq!(out.total_values(), 6);
        assert_eq!(out.total_atoms(), 7);
    }

    #[test]
    fn negative_accumulators_round_toward_zero_then_relu_to_zero() {
        // The requantization shift divides rounding toward zero (same
        // convention as pool2d Average); combined with ReLU every negative
        // accumulator lands exactly at 0, never at a wrapped or −∞-rounded
        // value. -7 >> 1 would be -4 under arithmetic shift; the PPU
        // computes trunc(-7 / 2) = -3, and ReLU clamps both to 0.
        let acc = acc_from(&[-7, -1, -1024, i64::MIN, 6, 0, 9, 64], 2, 2, 2);
        let ppu = PostProcessor {
            requant_shift: 1,
            out_bits: 4,
            ..PostProcessor::new(1, 4)
        };
        let out = ppu.process(&acc);
        assert_eq!(out.activations.channel(0), &[0, 0, 0, 0]);
        assert_eq!(out.activations.channel(1), &[3, 0, 4, 15]);
        assert_eq!(out.values_per_channel, vec![0, 3]);
    }

    #[test]
    fn compressed_roundtrips() {
        let acc = acc_from(&[0, 12, 0, 300, 0, 0, 5, 0], 2, 2, 2);
        let ppu = PostProcessor::new(0, 8);
        let out = ppu.process(&acc);
        assert_eq!(out.compressed.to_tensor(2, 2), out.activations);
        assert_eq!(out.compressed.count_nonzero() as u64, out.total_values());
    }

    #[test]
    fn counts_match_sparsity_module() {
        use qnn::sparsity::SparsityStats;
        let acc = acc_from(
            &(0..64)
                .map(|i| (i * 7 % 300) as i64 - 50)
                .collect::<Vec<_>>(),
            4,
            4,
            4,
        );
        let ppu = PostProcessor::new(1, 8);
        let out = ppu.process(&acc);
        let stats = SparsityStats::from_tensor3(&out.activations, 8, 2);
        assert_eq!(out.total_atoms(), stats.nonzero_atoms);
        assert_eq!(out.total_values() as usize, stats.nonzero_values);
    }
}
