//! Weight-buffer image: the byte-exact offline format of §IV-B.
//!
//! Kernels are flattened, zero values *and* zero atoms removed offline, and
//! the surviving atoms packed with their metadata into the image the weight
//! buffer holds — per input channel a header plus a dense array of packed
//! atom records. The loader reconstructs exactly the shuffled
//! [`WeightStream`]s the Atomputer consumes, so encode→decode is bit-exact
//! against the online compression path.
//!
//! Record layout (32 bits per atom):
//!
//! ```text
//! [ 7:0]  atom magnitude (up to 8-bit granularity)
//! [11:8]  shift offset (0..15, covers 16-bit weights at 1-bit atoms)
//! [12]    sign
//! [13]    last-atom flag
//! [17:14] kernel x
//! [21:18] kernel y
//! [31:22] output channel (up to 1024 kernels per group)
//! ```

use atomstream::atom::{Atom, AtomBits};
use atomstream::compress::compress_weights;
use atomstream::error::AtomError;
use atomstream::flatten::flatten_kernel_channel;
use atomstream::stream::{WeightEntry, WeightStream};
use qnn::tensor::Tensor4;
use serde::{Deserialize, Serialize};

/// Bits per packed atom record.
pub const RECORD_BITS: usize = 32;

fn check_field(field: &'static str, value: u32, max: u32) -> Result<(), AtomError> {
    if value > max {
        return Err(AtomError::PackFieldOverflow { field, value, max });
    }
    Ok(())
}

fn pack(e: &WeightEntry) -> Result<u32, AtomError> {
    // Validated at runtime (not just debug-asserted): a 16-bit weight at
    // 1-bit atoms already needs shift 15, so any wider combination would
    // silently truncate the high bits of the shift/coordinate fields.
    check_field("shift", e.atom.shift as u32, 15)?;
    check_field("x", e.x as u32, 15)?;
    check_field("y", e.y as u32, 15)?;
    check_field("out_ch", e.out_ch as u32, 1023)?;
    Ok((e.atom.mag as u32)
        | ((e.atom.shift as u32) << 8)
        | ((e.atom.negative as u32) << 12)
        | ((e.atom.last as u32) << 13)
        | ((e.x as u32) << 14)
        | ((e.y as u32) << 18)
        | ((e.out_ch as u32) << 22))
}

fn unpack(w: u32) -> WeightEntry {
    WeightEntry {
        atom: Atom {
            mag: (w & 0xFF) as u8,
            shift: ((w >> 8) & 0xF) as u8,
            negative: (w >> 12) & 1 == 1,
            last: (w >> 13) & 1 == 1,
        },
        x: ((w >> 14) & 0xF) as u16,
        y: ((w >> 18) & 0xF) as u16,
        out_ch: ((w >> 22) & 0x3FF) as u16,
    }
}

/// The offline-compressed weight image for one layer's kernels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightBufferImage {
    /// Per-input-channel atom record arrays.
    channels: Vec<Vec<u32>>,
}

impl WeightBufferImage {
    /// Encodes a kernel tensor offline: flatten, squeeze zeros, atomize,
    /// shuffle (§IV-C2 order), pack.
    ///
    /// # Errors
    /// Propagates atomization errors (weights exceeding `w_bits`) and
    /// returns [`AtomError::PackFieldOverflow`] when an atom's metadata does
    /// not fit the 32-bit record layout (e.g. `w_bits > 16` at 1-bit atoms
    /// produces shifts beyond the 4-bit shift field).
    pub fn encode(kernels: &Tensor4, w_bits: u8, atom_bits: AtomBits) -> Result<Self, AtomError> {
        let (o, i, kh, kw) = kernels.shape();
        if o > 1024 || kh > 16 || kw > 16 {
            return Err(AtomError::TileShapeMismatch {
                expected: (1024, 16),
                actual: (o, kh),
            });
        }
        let mut channels = Vec::with_capacity(i);
        for ci in 0..i {
            let flat = flatten_kernel_channel(kernels, ci)?;
            let stream = compress_weights(&flat, w_bits, atom_bits)?;
            channels.push(
                stream
                    .entries()
                    .iter()
                    .map(pack)
                    .collect::<Result<Vec<u32>, AtomError>>()?,
            );
        }
        Ok(Self { channels })
    }

    /// Number of input channels in the image.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Non-zero atom count for one channel (the balancer's `S_i`, readable
    /// straight from the header).
    ///
    /// # Panics
    /// Panics if `channel` is out of range.
    pub fn atoms(&self, channel: usize) -> usize {
        self.channels[channel].len()
    }

    /// Total image size in bits (records plus one 32-bit length header per
    /// channel).
    pub fn storage_bits(&self) -> usize {
        self.channels
            .iter()
            .map(|c| 32 + c.len() * RECORD_BITS)
            .sum()
    }

    /// Reconstructs the stream for one channel, exactly as the online
    /// compression path would produce it.
    ///
    /// # Panics
    /// Panics if `channel` is out of range.
    pub fn stream(&self, channel: usize) -> WeightStream {
        WeightStream::from_entries(self.channels[channel].iter().map(|&w| unpack(w)).collect())
    }

    /// Serializes the image into raw little-endian bytes (what DRAM holds).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.storage_bits() / 8);
        for ch in &self.channels {
            out.extend_from_slice(&(ch.len() as u32).to_le_bytes());
            for &rec in ch {
                out.extend_from_slice(&rec.to_le_bytes());
            }
        }
        out
    }

    /// Parses an image back from raw bytes.
    ///
    /// # Errors
    /// Returns a descriptive error on truncated input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut channels = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            if pos + 4 > bytes.len() {
                return Err(format!("truncated channel header at byte {pos}"));
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 4;
            if pos + 4 * len > bytes.len() {
                return Err(format!(
                    "truncated channel body at byte {pos} (need {len} records)"
                ));
            }
            let mut ch = Vec::with_capacity(len);
            for r in 0..len {
                let off = pos + 4 * r;
                ch.push(u32::from_le_bytes(
                    bytes[off..off + 4].try_into().expect("4 bytes"),
                ));
            }
            pos += 4 * len;
            channels.push(ch);
        }
        Ok(Self { channels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::quant::BitWidth;
    use qnn::workload::{WeightProfile, WorkloadGen};

    fn kernels(seed: u64) -> Tensor4 {
        let mut gen = WorkloadGen::new(seed);
        gen.weights(16, 8, 3, 3, &WeightProfile::benchmark(BitWidth::W4))
            .unwrap()
    }

    #[test]
    fn encode_matches_online_compression() {
        let k = kernels(3);
        let img = WeightBufferImage::encode(&k, 4, AtomBits::B2).unwrap();
        assert_eq!(img.channel_count(), 8);
        for ci in 0..8 {
            let flat = flatten_kernel_channel(&k, ci).unwrap();
            let online = compress_weights(&flat, 4, AtomBits::B2).unwrap();
            assert_eq!(img.stream(ci), online, "channel {ci}");
            assert_eq!(img.atoms(ci), online.len());
        }
    }

    #[test]
    fn byte_roundtrip_is_exact() {
        let k = kernels(7);
        let img = WeightBufferImage::encode(&k, 4, AtomBits::B2).unwrap();
        let bytes = img.to_bytes();
        assert_eq!(bytes.len() * 8, img.storage_bits());
        let back = WeightBufferImage::from_bytes(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn truncation_is_detected() {
        let img = WeightBufferImage::encode(&kernels(9), 4, AtomBits::B2).unwrap();
        let bytes = img.to_bytes();
        assert!(WeightBufferImage::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(WeightBufferImage::from_bytes(&bytes[..2]).is_err());
    }

    #[test]
    fn sparser_kernels_make_smaller_images() {
        let mut gen = WorkloadGen::new(5);
        let dense = gen
            .weights(
                16,
                8,
                3,
                3,
                &WeightProfile::benchmark(BitWidth::W4).with_prune(0.1),
            )
            .unwrap();
        let sparse = gen
            .weights(
                16,
                8,
                3,
                3,
                &WeightProfile::benchmark(BitWidth::W4).with_prune(0.8),
            )
            .unwrap();
        let di = WeightBufferImage::encode(&dense, 4, AtomBits::B2).unwrap();
        let si = WeightBufferImage::encode(&sparse, 4, AtomBits::B2).unwrap();
        assert!(si.storage_bits() < di.storage_bits());
    }

    #[test]
    fn pack_unpack_all_fields() {
        let e = WeightEntry {
            atom: Atom {
                mag: 255,
                shift: 14,
                negative: true,
                last: true,
            },
            x: 15,
            y: 13,
            out_ch: 1023,
        };
        assert_eq!(unpack(pack(&e).unwrap()), e);
    }

    #[test]
    fn pack_rejects_out_of_range_fields() {
        let base = WeightEntry {
            atom: Atom {
                mag: 1,
                shift: 0,
                negative: false,
                last: true,
            },
            x: 0,
            y: 0,
            out_ch: 0,
        };
        let mut e = base;
        e.atom.shift = 16;
        assert_eq!(
            pack(&e),
            Err(AtomError::PackFieldOverflow {
                field: "shift",
                value: 16,
                max: 15
            })
        );
        let mut e = base;
        e.x = 16;
        assert!(matches!(
            pack(&e),
            Err(AtomError::PackFieldOverflow { field: "x", .. })
        ));
        let mut e = base;
        e.y = 31;
        assert!(matches!(
            pack(&e),
            Err(AtomError::PackFieldOverflow { field: "y", .. })
        ));
        let mut e = base;
        e.out_ch = 1024;
        assert!(matches!(
            pack(&e),
            Err(AtomError::PackFieldOverflow {
                field: "out_ch",
                ..
            })
        ));
    }

    #[test]
    fn encode_rejects_wide_weights_instead_of_truncating() {
        // A 20-bit weight at 1-bit atoms needs a shift of 19, which the
        // 4-bit shift field cannot hold. Before validation this silently
        // corrupted the image; now it is a typed error.
        let k = Tensor4::from_vec(1, 1, 1, 1, vec![1 << 19]).unwrap();
        let err = WeightBufferImage::encode(&k, 20, AtomBits::B1).unwrap_err();
        assert!(
            matches!(
                err,
                AtomError::PackFieldOverflow {
                    field: "shift",
                    value: 19,
                    max: 15
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn oversized_kernels_rejected() {
        let big = Tensor4::zeros(2000, 1, 1, 1).unwrap();
        assert!(WeightBufferImage::encode(&big, 4, AtomBits::B2).is_err());
    }
}
