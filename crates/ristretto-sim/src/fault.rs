//! Deterministic fault injection, online detection and recovery accounting.
//!
//! The Ristretto dataflow is a chain of stateful structures — the packed
//! weight-buffer records of §IV-B, the in-flight weight/activation atom
//! streams of §III-B, the Atomulator crossbar FIFOs and the accumulate
//! buffer of §IV-C4. This module perturbs each of them *deterministically*:
//! every injection decision is a pure function of the campaign seed and the
//! fault site's logical coordinates (structure, layer, channel, tile,
//! attempt, item), never of a shared stateful RNG, so a campaign is
//! byte-identical at any `rayon` thread count and a retried tile attempt
//! (which bumps `attempt`) re-rolls its faults instead of deterministically
//! re-faulting.
//!
//! Corruption is restricted to *value* bits — the atom magnitude byte and,
//! for weights, the sign bit. Coordinate and flag bits are assumed covered
//! by the hardware's address validator (`comp` range checks at the
//! accumulate buffer), which the functional model already enforces as
//! asserts; the interesting silent-corruption space is the value bits that
//! no address check can see.
//!
//! Detection uses three online monitors, each realizable in hardware as an
//! incrementally-maintained register:
//!
//! * **stream checksums** — the FNV-1a digests recorded by
//!   [`atomstream::conv_csc::WeightStreamSet::compile`] and recomputed
//!   before every intersection;
//! * **conservation** — one intersection adds exactly
//!   `weight_term_sum · act_value_sum` to the accumulator plane
//!   (distributivity of the Eq 1 delivery schedule), checked in `i128`;
//! * **order-sensitive digests** — a running hash over accumulate-buffer
//!   deliveries (and FIFO enqueues) that catches the rare pair of faults
//!   whose contributions cancel in a plain sum.

use crate::config::RistrettoConfig;
use atomstream::stream::{ActEntry, WeightEntry};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Denominator of every per-structure fault rate: faults per million
/// opportunities.
pub const PPM: u32 = 1_000_000;

/// The five injectable structures of the Ristretto pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultStructure {
    /// Packed 32-bit records in the weight-buffer image (§IV-B): a flip in
    /// a record's magnitude or sign field, surfaced when the record is
    /// streamed to a tile.
    WeightBuffer,
    /// An in-flight weight atom stream entry between buffer and Atomputer.
    WeightStream,
    /// An in-flight activation atom stream entry out of the Atomizer.
    ActivationStream,
    /// A word of the accumulate buffer (§IV-C4).
    AccumBuffer,
    /// An Atomulator crossbar FIFO entry, dropped or duplicated.
    Fifo,
}

impl FaultStructure {
    /// Every structure, in reporting order.
    pub const ALL: [FaultStructure; 5] = [
        FaultStructure::WeightBuffer,
        FaultStructure::WeightStream,
        FaultStructure::ActivationStream,
        FaultStructure::AccumBuffer,
        FaultStructure::Fifo,
    ];

    /// Stable dotted-name fragment used in reports and counters.
    pub fn name(self) -> &'static str {
        match self {
            FaultStructure::WeightBuffer => "weight_buffer",
            FaultStructure::WeightStream => "weight_stream",
            FaultStructure::ActivationStream => "act_stream",
            FaultStructure::AccumBuffer => "accum",
            FaultStructure::Fifo => "fifo",
        }
    }

    /// Hash-domain separator; arbitrary but fixed per structure.
    fn discriminant(self) -> u64 {
        match self {
            FaultStructure::WeightBuffer => 0x11,
            FaultStructure::WeightStream => 0x22,
            FaultStructure::ActivationStream => 0x33,
            FaultStructure::AccumBuffer => 0x44,
            FaultStructure::Fifo => 0x55,
        }
    }
}

impl fmt::Display for FaultStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a deterministic fault-injection campaign, carried on
/// [`RistrettoConfig::faults`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Campaign seed; two runs with equal seeds and equal workloads inject
    /// byte-identical faults at any thread count.
    pub seed: u64,
    /// Weight-buffer record flips per million streamed records.
    pub weight_buffer_ppm: u32,
    /// Weight-stream entry flips per million streamed entries.
    pub weight_stream_ppm: u32,
    /// Activation-stream entry flips per million streamed entries.
    pub act_stream_ppm: u32,
    /// Accumulate-buffer word flips per million words written.
    pub accum_ppm: u32,
    /// FIFO entries dropped/duplicated per million deliveries.
    pub fifo_ppm: u32,
    /// Whether the online detection monitors run.
    pub detect: bool,
    /// Whether detected faults trigger tile re-execution (and, on retry
    /// exhaustion, the per-layer dense fallback in `Session::run`).
    pub recover: bool,
    /// Tile re-executions allowed per `(layer, channel, tile)` before the
    /// layer falls back to the dense reference path.
    pub retry_budget: u32,
}

impl FaultConfig {
    /// A campaign with one uniform rate across all five structures,
    /// detection and recovery enabled, and a retry budget of 3.
    pub fn uniform(seed: u64, ppm: u32) -> Self {
        Self {
            seed,
            weight_buffer_ppm: ppm,
            weight_stream_ppm: ppm,
            act_stream_ppm: ppm,
            accum_ppm: ppm,
            fifo_ppm: ppm,
            detect: true,
            recover: true,
            retry_budget: 3,
        }
    }

    /// A campaign that injects nothing (useful as a base for builders).
    pub fn quiescent(seed: u64) -> Self {
        Self::uniform(seed, 0)
    }

    /// Returns a copy with one structure's rate replaced.
    pub fn with_rate(mut self, structure: FaultStructure, ppm: u32) -> Self {
        match structure {
            FaultStructure::WeightBuffer => self.weight_buffer_ppm = ppm,
            FaultStructure::WeightStream => self.weight_stream_ppm = ppm,
            FaultStructure::ActivationStream => self.act_stream_ppm = ppm,
            FaultStructure::AccumBuffer => self.accum_ppm = ppm,
            FaultStructure::Fifo => self.fifo_ppm = ppm,
        }
        self
    }

    /// Returns a copy with detection toggled.
    pub fn with_detect(mut self, detect: bool) -> Self {
        self.detect = detect;
        self
    }

    /// Returns a copy with recovery toggled.
    pub fn with_recover(mut self, recover: bool) -> Self {
        self.recover = recover;
        self
    }

    /// The campaign with detection and recovery both forced on — the
    /// degraded-mode override the serving circuit breaker re-runs open-lane
    /// batches under, so even a detect-only campaign completes instead of
    /// erroring out of the scheduler. Injection sites and the seed are
    /// untouched: the same faults fire, they are just always contained.
    pub fn forced_recovery(self) -> Self {
        self.with_detect(true).with_recover(true)
    }

    /// The injection rate for one structure, in ppm.
    pub fn rate(&self, structure: FaultStructure) -> u32 {
        match structure {
            FaultStructure::WeightBuffer => self.weight_buffer_ppm,
            FaultStructure::WeightStream => self.weight_stream_ppm,
            FaultStructure::ActivationStream => self.act_stream_ppm,
            FaultStructure::AccumBuffer => self.accum_ppm,
            FaultStructure::Fifo => self.fifo_ppm,
        }
    }

    /// The largest configured per-structure rate (validation helper).
    pub fn max_rate(&self) -> u32 {
        FaultStructure::ALL
            .iter()
            .map(|&s| self.rate(s))
            .max()
            .unwrap_or(0)
    }
}

/// A fault site's logical coordinates. Injection decisions are pure
/// functions of these coordinates plus the seed, which is what makes
/// campaigns thread-count invariant: the same site always rolls the same
/// fault no matter which worker thread visits it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// Layer index within the network.
    pub layer: usize,
    /// Input channel within the layer.
    pub channel: usize,
    /// Logical tile index, `(y0 / tile_h) · tiles_x + (x0 / tile_w)` —
    /// grid position, not enumeration order.
    pub tile: usize,
    /// Execution attempt for this `(layer, channel, tile)`; retries bump it
    /// so a re-execution re-rolls its faults.
    pub attempt: u32,
    /// Item index within the structure (stream entry, accumulator word or
    /// delivery ordinal).
    pub item: usize,
}

/// A typed detection event: which structure faulted, and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultDetected {
    /// The structure whose monitor fired.
    pub structure: FaultStructure,
    /// Layer index within the network.
    pub layer: usize,
    /// Input channel within the layer (0 for whole-tile-group monitors).
    pub channel: usize,
    /// Logical tile index the fault was contained to.
    pub tile: usize,
    /// Attempts consumed for this tile, including the detecting one.
    pub attempts: u32,
}

impl fmt::Display for FaultDetected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault detected in {} at layer {} channel {} tile {} after {} attempt(s)",
            self.structure, self.layer, self.channel, self.tile, self.attempts
        )
    }
}

impl Error for FaultDetected {}

/// What a FIFO fault does to the targeted delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FifoAction {
    /// The delivery never enters the bank FIFO.
    Drop,
    /// The delivery is enqueued twice.
    Duplicate,
}

/// Per-run fault accounting, returned on `SessionRun` and aggregated by
/// the chaos harness. All-zero when injection is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Weight-buffer record flips injected.
    pub injected_weight_buffer: u64,
    /// Weight-stream entry flips injected.
    pub injected_weight_stream: u64,
    /// Activation-stream entry flips injected.
    pub injected_act_stream: u64,
    /// Accumulate-buffer word flips injected.
    pub injected_accum: u64,
    /// FIFO deliveries dropped or duplicated.
    pub injected_fifo: u64,
    /// Weight-buffer faults caught by the checksum monitor.
    pub detected_weight_buffer: u64,
    /// Weight-stream faults caught by the checksum monitor.
    pub detected_weight_stream: u64,
    /// Activation-stream faults caught by the checksum monitor.
    pub detected_act_stream: u64,
    /// Accumulate-buffer faults caught by conservation/digest monitors.
    pub detected_accum: u64,
    /// FIFO faults caught by the enqueue-accounting monitor.
    pub detected_fifo: u64,
    /// Tile re-executions triggered by detections.
    pub retries: u64,
    /// Faulted tiles whose re-execution completed cleanly.
    pub recovered_tiles: u64,
    /// Layers replayed on the dense reference path after retry exhaustion.
    pub layer_fallbacks: u64,
    /// Atom multiplications discarded with rejected tile attempts.
    pub wasted_atom_mults: u64,
    /// Accumulate-buffer deliveries discarded with rejected attempts.
    pub wasted_deliveries: u64,
}

impl FaultStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.injected_weight_buffer += other.injected_weight_buffer;
        self.injected_weight_stream += other.injected_weight_stream;
        self.injected_act_stream += other.injected_act_stream;
        self.injected_accum += other.injected_accum;
        self.injected_fifo += other.injected_fifo;
        self.detected_weight_buffer += other.detected_weight_buffer;
        self.detected_weight_stream += other.detected_weight_stream;
        self.detected_act_stream += other.detected_act_stream;
        self.detected_accum += other.detected_accum;
        self.detected_fifo += other.detected_fifo;
        self.retries += other.retries;
        self.recovered_tiles += other.recovered_tiles;
        self.layer_fallbacks += other.layer_fallbacks;
        self.wasted_atom_mults += other.wasted_atom_mults;
        self.wasted_deliveries += other.wasted_deliveries;
    }

    /// Injected faults summed over every structure.
    pub fn injected_total(&self) -> u64 {
        FaultStructure::ALL.iter().map(|&s| self.injected(s)).sum()
    }

    /// Detected faults summed over every structure.
    pub fn detected_total(&self) -> u64 {
        FaultStructure::ALL.iter().map(|&s| self.detected(s)).sum()
    }

    /// Injected-fault count for one structure.
    pub fn injected(&self, structure: FaultStructure) -> u64 {
        match structure {
            FaultStructure::WeightBuffer => self.injected_weight_buffer,
            FaultStructure::WeightStream => self.injected_weight_stream,
            FaultStructure::ActivationStream => self.injected_act_stream,
            FaultStructure::AccumBuffer => self.injected_accum,
            FaultStructure::Fifo => self.injected_fifo,
        }
    }

    /// Detected-fault count for one structure.
    pub fn detected(&self, structure: FaultStructure) -> u64 {
        match structure {
            FaultStructure::WeightBuffer => self.detected_weight_buffer,
            FaultStructure::WeightStream => self.detected_weight_stream,
            FaultStructure::ActivationStream => self.detected_act_stream,
            FaultStructure::AccumBuffer => self.detected_accum,
            FaultStructure::Fifo => self.detected_fifo,
        }
    }

    /// Total faults injected across all structures.
    pub fn total_injected(&self) -> u64 {
        FaultStructure::ALL.iter().map(|&s| self.injected(s)).sum()
    }

    /// Total faults detected across all structures.
    pub fn total_detected(&self) -> u64 {
        FaultStructure::ALL.iter().map(|&s| self.detected(s)).sum()
    }

    /// Records one injected fault, mirrored into the `fault.*` counters.
    pub fn record_injected(&mut self, structure: FaultStructure, count: u64) {
        if count == 0 {
            return;
        }
        let event = match structure {
            FaultStructure::WeightBuffer => {
                self.injected_weight_buffer += count;
                obs::Event::FaultInjectedWeightBuffer
            }
            FaultStructure::WeightStream => {
                self.injected_weight_stream += count;
                obs::Event::FaultInjectedWeightStream
            }
            FaultStructure::ActivationStream => {
                self.injected_act_stream += count;
                obs::Event::FaultInjectedActStream
            }
            FaultStructure::AccumBuffer => {
                self.injected_accum += count;
                obs::Event::FaultInjectedAccum
            }
            FaultStructure::Fifo => {
                self.injected_fifo += count;
                obs::Event::FaultInjectedFifo
            }
        };
        obs::record(event, count);
    }

    /// Records detected faults, mirrored into the `fault.*` counters.
    pub fn record_detected(&mut self, structure: FaultStructure, count: u64) {
        if count == 0 {
            return;
        }
        let event = match structure {
            FaultStructure::WeightBuffer => {
                self.detected_weight_buffer += count;
                obs::Event::FaultDetectedWeightBuffer
            }
            FaultStructure::WeightStream => {
                self.detected_weight_stream += count;
                obs::Event::FaultDetectedWeightStream
            }
            FaultStructure::ActivationStream => {
                self.detected_act_stream += count;
                obs::Event::FaultDetectedActStream
            }
            FaultStructure::AccumBuffer => {
                self.detected_accum += count;
                obs::Event::FaultDetectedAccum
            }
            FaultStructure::Fifo => {
                self.detected_fifo += count;
                obs::Event::FaultDetectedFifo
            }
        };
        obs::record(event, count);
    }

    /// Records one tile re-execution triggered by a detection.
    pub fn record_retry(&mut self) {
        self.retries += 1;
        obs::record(obs::Event::FaultRetries, 1);
    }

    /// Records a faulted tile whose re-execution completed cleanly.
    pub fn record_recovered_tile(&mut self) {
        self.recovered_tiles += 1;
        obs::record(obs::Event::FaultRecoveredTiles, 1);
    }

    /// Records a layer replayed on the dense reference path.
    pub fn record_layer_fallback(&mut self) {
        self.layer_fallbacks += 1;
        obs::record(obs::Event::FaultLayerFallbacks, 1);
    }

    /// Records work discarded with a rejected tile attempt.
    pub fn record_wasted(&mut self, atom_mults: u64, deliveries: u64) {
        self.wasted_atom_mults += atom_mults;
        self.wasted_deliveries += deliveries;
        obs::record(obs::Event::FaultWastedAtomMults, atom_mults);
    }
}

/// Outcome of the FIFO integrity monitor for one tile run: the Atomulator
/// folds every delivery it *intends* to enqueue into `expected_digest` at
/// the crossbar output and every entry that actually *enters* a bank FIFO
/// into `actual_digest`; a dropped or duplicated entry leaves the two
/// registers disagreeing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoCheck {
    /// FIFO faults injected during the run.
    pub injected: u64,
    /// Digest over intended deliveries.
    pub expected_digest: u64,
    /// Digest over actual enqueues.
    pub actual_digest: u64,
}

impl FifoCheck {
    /// Whether the enqueue-accounting monitor fired.
    pub fn detected(&self) -> bool {
        self.expected_digest != self.actual_digest
    }
}

/// Folds one delivery `(index, bank)` into a running enqueue digest.
#[inline]
pub fn fold_delivery(h: u64, index: u64, bank: u64) -> u64 {
    splitmix64(h ^ splitmix64(index ^ (bank << 32)))
}

/// `splitmix64` finalizer — a strong, cheap bit mixer.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic core-death injection for the fleet simulator
/// ([`crate::fleet`]). Deaths are decided by a pure hash of
/// `(seed, layer, core)` — the same site-hash discipline as
/// [`FaultInjector::decide`] — so a campaign reproduces bit-identically at
/// any thread count, and the fleet's resharding/recovery path can be
/// checked byte-for-byte against the fault-free run.
///
/// This lives *outside* [`FaultConfig`] on purpose: `FaultConfig` is
/// serialized into compiled-network artifacts, and core topology is a
/// fleet property, not a per-core compile property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreDeathConfig {
    /// Campaign seed.
    pub seed: u64,
    /// Per-(layer, core) death probability in parts-per-million.
    pub rate_ppm: u32,
}

impl CoreDeathConfig {
    /// A campaign with the given seed and per-opportunity rate.
    pub fn new(seed: u64, rate_ppm: u32) -> Self {
        Self { seed, rate_ppm }
    }

    /// Whether `core` dies while executing `layer`. Pure function of the
    /// coordinates; independent of thread count and execution order.
    pub fn decide(&self, layer: usize, core: usize) -> bool {
        if self.rate_ppm == 0 {
            return false;
        }
        let mut h = splitmix64(self.seed ^ 0xC0DE_0DEAD);
        h = splitmix64(h ^ layer as u64);
        h = splitmix64(h ^ core as u64);
        h % (PPM as u64) < self.rate_ppm as u64
    }
}

/// Order-sensitive digest over the raw accumulator words of one tile
/// attempt, modeling a checksum register the accumulate buffer maintains
/// incrementally at each delivery. Together with the conservation law it
/// catches the (astronomically rare) pair of word flips whose deltas
/// cancel in a plain sum.
pub fn plane_digest(cells: &[i64]) -> u64 {
    let mut h = 0u64;
    for (i, &v) in cells.iter().enumerate() {
        h = splitmix64(h ^ splitmix64((i as u64) ^ (v as u64)));
    }
    h
}

/// The deterministic fault injector: a thin wrapper over [`FaultConfig`]
/// whose every decision hashes `(seed, structure, site)`.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    cfg: FaultConfig,
}

impl FaultInjector {
    /// Wraps a campaign configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        Self { cfg }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether the online detection monitors should run.
    pub fn detect(&self) -> bool {
        self.cfg.detect
    }

    /// Whether detected faults trigger re-execution / fallback.
    pub fn recover(&self) -> bool {
        self.cfg.recover
    }

    /// Tile re-executions allowed before fallback; 0 when recovery is off.
    pub fn max_attempts(&self) -> u32 {
        if self.cfg.recover {
            self.cfg.retry_budget
        } else {
            0
        }
    }

    fn site_hash(&self, structure: FaultStructure, site: FaultSite) -> u64 {
        let mut h = splitmix64(self.cfg.seed ^ structure.discriminant());
        h = splitmix64(h ^ site.layer as u64);
        h = splitmix64(h ^ site.channel as u64);
        h = splitmix64(h ^ site.tile as u64);
        h = splitmix64(h ^ site.attempt as u64);
        splitmix64(h ^ site.item as u64)
    }

    /// Decides whether a fault fires at `site` in `structure`. Returns the
    /// site's entropy word (for bit/action selection) when it does.
    pub fn decide(&self, structure: FaultStructure, site: FaultSite) -> Option<u64> {
        let rate = self.cfg.rate(structure);
        if rate == 0 {
            return None;
        }
        let h = self.site_hash(structure, site);
        if h % (PPM as u64) < rate as u64 {
            Some(splitmix64(h))
        } else {
            None
        }
    }

    /// Flips one value bit of a weight entry: one of the 8 magnitude bits
    /// or the sign, chosen by the entropy word.
    pub fn corrupt_weight_entry(entry: &mut WeightEntry, entropy: u64) {
        match entropy % 9 {
            8 => entry.atom.negative = !entry.atom.negative,
            b => entry.atom.mag ^= 1 << b,
        }
    }

    /// Flips one magnitude bit of an activation entry (activations are
    /// unsigned post-ReLU; there is no sign bit to flip).
    pub fn corrupt_act_entry(entry: &mut ActEntry, entropy: u64) {
        entry.atom.mag ^= 1 << (entropy % 8);
    }

    /// Flips one bit of an accumulate-buffer word, within the configured
    /// accumulator width so the perturbed value stays representable.
    pub fn corrupt_accum_word(word: &mut i64, acc_bits: u8, entropy: u64) {
        let bit = entropy % acc_bits.max(1) as u64;
        *word ^= 1i64 << bit;
    }

    /// What a firing FIFO fault does to its delivery.
    pub fn fifo_action(entropy: u64) -> FifoAction {
        if entropy & 1 == 0 {
            FifoAction::Drop
        } else {
            FifoAction::Duplicate
        }
    }
}

/// Validates the fault surface of a [`RistrettoConfig`]; called from
/// `RistrettoConfig::validate`.
pub(crate) fn validate_config(cfg: &RistrettoConfig) -> Result<(), crate::config::ConfigError> {
    if let Some(f) = cfg.faults {
        if f.max_rate() > PPM {
            return Err(crate::config::ConfigError::FaultRateOutOfRange(
                f.max_rate(),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomstream::atom::Atom;

    fn site(item: usize) -> FaultSite {
        FaultSite {
            layer: 1,
            channel: 2,
            tile: 3,
            attempt: 0,
            item,
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_coordinates() {
        let inj = FaultInjector::new(FaultConfig::uniform(42, 100_000));
        for item in 0..64 {
            let a = inj.decide(FaultStructure::WeightStream, site(item));
            let b = inj.decide(FaultStructure::WeightStream, site(item));
            assert_eq!(a, b, "item {item}");
        }
    }

    #[test]
    fn different_structures_roll_independently() {
        let inj = FaultInjector::new(FaultConfig::uniform(7, 500_000));
        let fires: Vec<Vec<bool>> = FaultStructure::ALL
            .iter()
            .map(|&s| (0..64).map(|i| inj.decide(s, site(i)).is_some()).collect())
            .collect();
        // With a 50% rate the five per-structure firing patterns cannot all
        // coincide unless the hash ignores the discriminant.
        assert!(
            (1..fires.len()).any(|i| fires[i] != fires[0]),
            "structure discriminant is dead"
        );
    }

    #[test]
    fn attempt_reroll_changes_the_pattern() {
        let inj = FaultInjector::new(FaultConfig::uniform(11, 300_000));
        let roll = |attempt: u32| -> Vec<bool> {
            (0..128)
                .map(|item| {
                    inj.decide(
                        FaultStructure::AccumBuffer,
                        FaultSite {
                            attempt,
                            ..site(item)
                        },
                    )
                    .is_some()
                })
                .collect()
        };
        assert_ne!(roll(0), roll(1), "retry must re-roll faults");
    }

    #[test]
    fn rates_scale_roughly_with_ppm() {
        let count = |ppm: u32| -> usize {
            let inj = FaultInjector::new(FaultConfig::uniform(3, ppm));
            (0..10_000)
                .filter(|&i| {
                    inj.decide(FaultStructure::ActivationStream, site(i))
                        .is_some()
                })
                .count()
        };
        assert_eq!(count(0), 0);
        let low = count(10_000); // 1%
        let high = count(500_000); // 50%
        assert!(low > 0 && low < 1_000, "1% of 10k ≈ 100, got {low}");
        assert!(high > 3_000 && high < 7_000, "50% of 10k ≈ 5k, got {high}");
    }

    #[test]
    fn corruptions_touch_only_value_bits() {
        let mut w = WeightEntry {
            atom: Atom {
                mag: 0b1010,
                shift: 2,
                negative: false,
                last: true,
            },
            x: 1,
            y: 2,
            out_ch: 3,
        };
        let orig = w;
        for e in 0..32u64 {
            let mut probe = orig;
            FaultInjector::corrupt_weight_entry(&mut probe, e);
            assert_ne!(probe, orig);
            assert_eq!(
                (
                    probe.x,
                    probe.y,
                    probe.out_ch,
                    probe.atom.shift,
                    probe.atom.last
                ),
                (orig.x, orig.y, orig.out_ch, orig.atom.shift, orig.atom.last),
                "only mag/sign may change"
            );
        }
        FaultInjector::corrupt_weight_entry(&mut w, 8);
        assert!(w.atom.negative);

        let a = ActEntry {
            atom: Atom {
                mag: 7,
                shift: 0,
                negative: false,
                last: true,
            },
            x: 4,
            y: 5,
        };
        for e in 0..16u64 {
            let mut probe = a;
            FaultInjector::corrupt_act_entry(&mut probe, e);
            assert_ne!(probe.atom.mag, a.atom.mag);
            assert_eq!((probe.x, probe.y, probe.atom.last), (a.x, a.y, a.atom.last));
        }
    }

    #[test]
    fn accum_flip_stays_within_width() {
        for e in 0..64u64 {
            let mut w = 0i64;
            FaultInjector::corrupt_accum_word(&mut w, 24, e);
            assert!(w != 0 && w.unsigned_abs() < 1 << 24);
        }
    }

    #[test]
    fn plane_digest_is_order_and_value_sensitive() {
        let a = [1i64, 2, 3, 4];
        let b = [1i64, 2, 4, 3];
        let c = [1i64, 2, 3, 5];
        assert_ne!(plane_digest(&a), plane_digest(&b));
        assert_ne!(plane_digest(&a), plane_digest(&c));
        assert_eq!(plane_digest(&a), plane_digest(&[1, 2, 3, 4]));
    }

    #[test]
    fn core_death_is_a_pure_site_hash() {
        let cfg = CoreDeathConfig::new(9, 400_000);
        let roll: Vec<bool> = (0..64)
            .flat_map(|l| (0..8).map(move |c| cfg.decide(l, c)))
            .collect();
        let again: Vec<bool> = (0..64)
            .flat_map(|l| (0..8).map(move |c| cfg.decide(l, c)))
            .collect();
        assert_eq!(roll, again);
        let fired = roll.iter().filter(|&&b| b).count();
        assert!(fired > 0 && fired < roll.len(), "rate must be partial");
        assert!(!CoreDeathConfig::new(9, 0).decide(0, 0));
        // Seed changes the pattern.
        let other: Vec<bool> = (0..64)
            .flat_map(|l| (0..8).map(move |c| CoreDeathConfig::new(10, 400_000).decide(l, c)))
            .collect();
        assert_ne!(roll, other);
    }

    #[test]
    fn stats_merge_and_lookup() {
        let mut s = FaultStats::default();
        s.record_injected(FaultStructure::Fifo, 2);
        s.record_detected(FaultStructure::Fifo, 1);
        let mut t = FaultStats::default();
        t.record_injected(FaultStructure::AccumBuffer, 3);
        s.merge(&t);
        assert_eq!(s.injected(FaultStructure::Fifo), 2);
        assert_eq!(s.injected(FaultStructure::AccumBuffer), 3);
        assert_eq!(s.total_injected(), 5);
        assert_eq!(s.total_detected(), 1);
    }

    #[test]
    fn detected_error_names_structure_and_tile() {
        let e = FaultDetected {
            structure: FaultStructure::AccumBuffer,
            layer: 2,
            channel: 1,
            tile: 9,
            attempts: 4,
        };
        let s = e.to_string();
        assert!(
            s.contains("accum") && s.contains("tile 9") && s.contains("layer 2"),
            "{s}"
        );
    }
}
