//! The Atomizer (§IV-C1): on-the-fly zero-atom squeezing of activation
//! words.
//!
//! Each cycle the Atomizer scans the current 8-bit activation word with a
//! leading-one detector and emits one non-zero atom (magnitude, shift
//! offset, last flag) plus the word's `(x, y)` coordinate. A word holding
//! `k` non-zero atoms occupies the Atomizer for exactly `k` cycles — since
//! zero *values* were squeezed out beforehand, every word contains at
//! least one non-zero atom under 8-bit quantization (at least two/four
//! under 4/2-bit packing), so the Atomizer never starves the Atomputer.

use atomstream::atom::{Atom, AtomBits};
use atomstream::decompose::atomize_unsigned;
use atomstream::error::AtomError;
use atomstream::flatten::FlatActivation;
use atomstream::stream::{ActEntry, ActivationStream};
use serde::{Deserialize, Serialize};

/// One Atomizer output: the atom plus its source coordinate — what flows
/// to the Atomputer (atom) and the Atomulator (coordinate) each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomizerOutput {
    /// Cycle at which this atom pops out.
    pub cycle: u64,
    /// The emitted atom.
    pub atom: Atom,
    /// Source column within the tile.
    pub x: u16,
    /// Source row within the tile.
    pub y: u16,
}

/// Counters from one Atomizer run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomizerReport {
    /// Total cycles (equals atoms emitted: one per cycle, never idle).
    pub cycles: u64,
    /// Words consumed from the input buffer.
    pub words_read: u64,
    /// Maximum cycles any word was held (≤ 4 by §IV-C1).
    pub max_hold: u64,
}

/// Cycle model of one Atomizer.
#[derive(Debug, Clone, Copy)]
pub struct Atomizer {
    atom_bits: AtomBits,
    a_bits: u8,
}

impl Atomizer {
    /// An Atomizer for the given activation bit-width and atom granularity.
    pub fn new(a_bits: u8, atom_bits: AtomBits) -> Self {
        Self { atom_bits, a_bits }
    }

    /// Scans a sequence of compressed non-zero activation values (the
    /// flattened tile stream), emitting the per-cycle outputs and a report.
    ///
    /// # Errors
    /// Propagates atomization failures (value outside the declared width).
    pub fn scan(
        &self,
        words: &[FlatActivation],
    ) -> Result<(Vec<AtomizerOutput>, AtomizerReport), AtomError> {
        let mut outputs = Vec::new();
        let mut report = AtomizerReport::default();
        let mut cycle = 0u64;
        for w in words {
            report.words_read += 1;
            let atoms = atomize_unsigned(w.value, self.a_bits, self.atom_bits)?;
            debug_assert!(
                !atoms.is_empty(),
                "zero values are removed before the Atomizer"
            );
            report.max_hold = report.max_hold.max(atoms.len() as u64);
            for atom in atoms {
                outputs.push(AtomizerOutput {
                    cycle,
                    atom,
                    x: w.x,
                    y: w.y,
                });
                cycle += 1;
            }
        }
        report.cycles = cycle;
        obs::record(obs::Event::AtomizerCycles, report.cycles);
        obs::record(obs::Event::AtomizerWords, report.words_read);
        obs::record(obs::Event::AtomizerMaxHold, report.max_hold);
        Ok((outputs, report))
    }

    /// Convenience: the emitted atoms as an [`ActivationStream`] — the
    /// Atomizer is exactly the online implementation of
    /// [`atomstream::compress::compress_activations`].
    ///
    /// # Errors
    /// Propagates atomization failures.
    pub fn to_stream(&self, words: &[FlatActivation]) -> Result<ActivationStream, AtomError> {
        let (outputs, _) = self.scan(words)?;
        Ok(ActivationStream::from_entries(
            outputs
                .into_iter()
                .map(|o| ActEntry {
                    atom: o.atom,
                    x: o.x,
                    y: o.y,
                })
                .collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomstream::compress::compress_activations;

    fn words(values: &[i32]) -> Vec<FlatActivation> {
        values
            .iter()
            .enumerate()
            .map(|(i, &value)| FlatActivation {
                value,
                x: i as u16,
                y: 0,
            })
            .collect()
    }

    #[test]
    fn one_atom_per_cycle_never_idle() {
        let az = Atomizer::new(8, AtomBits::B2);
        let (outputs, report) = az.scan(&words(&[29, 3, 65])).unwrap();
        // 29 -> 3 atoms, 3 -> 1, 65 -> 2: six consecutive cycles.
        assert_eq!(report.cycles, 6);
        assert_eq!(outputs.len(), 6);
        for (i, o) in outputs.iter().enumerate() {
            assert_eq!(o.cycle, i as u64);
        }
        assert_eq!(report.words_read, 3);
    }

    #[test]
    fn word_hold_bounded_by_four_at_2bit_atoms() {
        let az = Atomizer::new(8, AtomBits::B2);
        let (_, report) = az.scan(&words(&[255, 85, 1])).unwrap();
        assert!(report.max_hold <= 4, "hold {}", report.max_hold);
        assert_eq!(report.max_hold, 4); // 255 = four non-zero atoms
    }

    #[test]
    fn coordinates_latch_across_a_words_atoms() {
        let az = Atomizer::new(8, AtomBits::B2);
        let (outputs, _) = az.scan(&words(&[29])).unwrap();
        assert!(outputs.iter().all(|o| o.x == 0 && o.y == 0));
        assert!(outputs.last().unwrap().atom.last);
        assert!(!outputs[0].atom.last);
    }

    #[test]
    fn matches_offline_compression() {
        let az = Atomizer::new(8, AtomBits::B2);
        let flat = words(&[29, 3, 65, 128, 7]);
        let online = az.to_stream(&flat).unwrap();
        let offline = compress_activations(&flat, 8, AtomBits::B2).unwrap();
        assert_eq!(online, offline);
    }

    #[test]
    fn constant_input_bandwidth_across_precisions() {
        // §III-B characteristic 1: the Atomizer feeds the Atomputer at a
        // constant `atom_bits` per cycle regardless of the values'
        // quantized width — one 8-bit value (4 atoms), two 4-bit values
        // (2 atoms each) and four 2-bit values (1 atom each) all occupy
        // the same four cycles.
        let az8 = Atomizer::new(8, AtomBits::B2);
        let az4 = Atomizer::new(4, AtomBits::B2);
        let az2 = Atomizer::new(2, AtomBits::B2);
        let (_, r8) = az8.scan(&words(&[0b1111_1111])).unwrap();
        let (_, r4) = az4.scan(&words(&[0b1111, 0b1111])).unwrap();
        let (_, r2) = az2.scan(&words(&[0b11, 0b11, 0b11, 0b11])).unwrap();
        assert_eq!(r8.cycles, 4);
        assert_eq!(r4.cycles, 4);
        assert_eq!(r2.cycles, 4);
    }

    #[test]
    fn shift_offsets_follow_table_iv() {
        let az = Atomizer::new(8, AtomBits::B2);
        let (outputs, _) = az.scan(&words(&[255])).unwrap();
        let shifts: Vec<u8> = outputs.iter().map(|o| o.atom.shift).collect();
        assert_eq!(shifts, vec![0, 2, 4, 6]);
    }
}
