//! Sharded fleet-scale simulation of the Fig 7 multi-core organization.
//!
//! Where [`crate::multicore`] scales the analytic closed form, this module
//! is a *first-class* multi-core layer: it shards a **compiled** network
//! ([`crate::engine::compile`]) across N cores under explicit strategies,
//! drives every shard through the same execution path a single-core
//! [`Session`] uses, and routes inter-core activation traffic through the
//! deterministic [`crate::noc`] queueing model. The per-layer cross-core
//! makespan — `max(per-core Eq 5 compute) + exchange makespan` —
//! generalizes the §IV-E balancer counters from tiles to cores.
//!
//! Three sharding strategies:
//!
//! * [`ShardStrategy::Batch`] — data parallelism: every core holds the
//!   full network and processes its own inputs; no inter-core traffic.
//! * [`ShardStrategy::OutputChannel`] — model parallelism: each layer's
//!   output channels are LPT-partitioned across cores by static weight
//!   atoms (the same greedy the §IV-E balancer uses across tiles);
//!   every layer boundary is an all-gather of the produced slices.
//! * [`ShardStrategy::Hybrid`] — `replicas` batch-parallel groups, each
//!   output-channel-sharded internally.
//!
//! **Byte-determinism is the invariant**: shard execution reuses the
//! channel-ordered engine kernels, slots run in slot order, the NoC is
//! pure integer arithmetic, and core deaths ([`crate::fault::CoreDeathConfig`]) are pure
//! site hashes followed by deterministic resharding — so fleet output is
//! byte-identical at any `(cores, threads)` combination, and a 1-core
//! fleet reproduces the single-core [`Session`] bytes exactly (enforced by
//! a diffcheck oracle family).

use crate::balance::{balance, is_exact_partition, BalanceStrategy, ChannelWorkload};
use crate::config::{FleetConfig, RistrettoConfig};
use crate::energy::COO_META_BITS;
use crate::engine::{CompiledLayer, CompiledNetwork, EngineError, Session, ShardView};
use crate::fault::{splitmix64, FaultStats};
use crate::noc::{Noc, NocReport};
use atomstream::atom::AtomBits;
use qnn::tensor::Tensor3;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// How a fleet partitions work across its cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShardStrategy {
    /// Data parallelism: whole-network replicas, one input per core.
    Batch,
    /// Model parallelism: output channels partitioned across all cores,
    /// all-gather at every layer boundary.
    OutputChannel,
    /// N batch-parallel replica groups (the payload; must divide the core
    /// count), output-channel-sharded inside each group.
    Hybrid(usize),
}

impl fmt::Display for ShardStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardStrategy::Batch => f.write_str("batch"),
            ShardStrategy::OutputChannel => f.write_str("output-channel"),
            ShardStrategy::Hybrid(replicas) => write!(f, "hybrid/{replicas}"),
        }
    }
}

/// LPT partition of one layer's output channels over `slots` shard slots,
/// balanced on static weight atoms; each group ascending, groups in slot
/// order. Exactly partitions `0..atoms.len()` (checked by the fleet's
/// constructor via [`is_exact_partition`]).
fn partition_out_channels(atoms: &[u64], slots: usize) -> Vec<Vec<usize>> {
    let workloads: Vec<ChannelWorkload> = atoms
        .iter()
        .enumerate()
        .map(|(channel, &weight_atoms)| ChannelWorkload {
            channel,
            act_atoms: 1,
            weight_atoms,
        })
        .collect();
    let mut groups = balance(&workloads, slots, 1, BalanceStrategy::WeightOnly).groups;
    for g in &mut groups {
        g.sort_unstable();
    }
    groups
}

/// A fleet's static sharding decision: for every layer, which output
/// channels each shard slot owns. Produced by LPT over per-out-channel
/// static weight atoms; serialized alongside compiled networks through
/// [`crate::artifact::encode_shard_plan`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Shard slots the plan partitions over (cores per replica group).
    pub group_size: usize,
    /// `layers[li][slot]` = ascending output channels of layer `li` owned
    /// by `slot`; may be empty when the layer has fewer output channels
    /// than the group has slots.
    pub layers: Vec<Vec<Vec<usize>>>,
}

impl ShardPlan {
    /// Plans `group_size` shards of a compiled network.
    pub fn compute(net: &CompiledNetwork, group_size: usize) -> Self {
        let layers = net
            .layers()
            .iter()
            .map(|l| partition_out_channels(&l.weight_atoms_per_out_channel(), group_size))
            .collect();
        Self { group_size, layers }
    }

    /// Per-layer channel sets of one slot (the input to
    /// [`CompiledNetwork::shard_view`]).
    pub fn slot_channels(&self, slot: usize) -> Vec<Vec<usize>> {
        self.layers.iter().map(|l| l[slot].clone()).collect()
    }

    /// Whether every layer's groups exactly partition that layer's output
    /// channels.
    pub fn verify(&self, net: &CompiledNetwork) -> bool {
        self.layers.len() == net.layers().len()
            && self.layers.iter().zip(net.layers()).all(|(groups, layer)| {
                groups.len() == self.group_size
                    && is_exact_partition(
                        groups.iter().map(Vec::as_slice),
                        layer.weights().out_channels(),
                    )
            })
    }

    /// Order-sensitive digest of the whole plan (artifact round-trip
    /// witness).
    pub fn digest(&self) -> u64 {
        let mut h = splitmix64(0x5A4D ^ self.group_size as u64);
        for groups in &self.layers {
            for g in groups {
                h = splitmix64(h ^ g.len() as u64);
                for &c in g {
                    h = splitmix64(h ^ c as u64);
                }
            }
        }
        h
    }
}

/// Integer-only result of one fleet pass, serialized byte-stably
/// cross-platform (ratios are derived at display time — see
/// [`FleetReport::throughput_per_mcycle`] and
/// [`FleetReport::utilization_permille`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Network name.
    pub network: String,
    /// Strategy label (`batch`, `output-channel`, `hybrid/R`).
    pub strategy: String,
    /// Fleet core count.
    pub cores: usize,
    /// Inputs processed.
    pub inputs: u64,
    /// Cycles from first input in to last output out.
    pub makespan_cycles: u64,
    /// Single-input latency (the first input's cycles through all layers).
    pub latency_cycles: u64,
    /// Per-core compute cycles summed over cores and layers.
    pub busy_cycles: u64,
    /// Cycles cores waited on slower shards or on the NoC.
    pub idle_cycles: u64,
    /// Compressed activation bits moved over inter-core links.
    pub link_bits: u64,
    /// Cycles links spent serializing flits.
    pub link_busy_cycles: u64,
    /// Deepest NoC ingress-FIFO occupancy observed.
    pub queue_highwater: u64,
    /// Fold of the per-port NoC FIFO digests (determinism witness).
    pub noc_digest: u64,
    /// Fold over every output tensor's bytes (byte-identity witness).
    pub output_digest: u64,
    /// Core deaths taken.
    pub core_deaths: u64,
    /// Resharding passes performed after deaths.
    pub reshards: u64,
}

impl FleetReport {
    /// Inputs per million cycles — derived, never serialized.
    pub fn throughput_per_mcycle(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.inputs as f64 * 1e6 / self.makespan_cycles as f64
    }

    /// Core utilization in permille: `busy / (busy + idle)` — integer,
    /// display-friendly, byte-stable.
    pub fn utilization_permille(&self) -> u64 {
        let denom = self.busy_cycles + self.idle_cycles;
        if denom == 0 {
            return 1000;
        }
        self.busy_cycles * 1000 / denom
    }
}

/// Everything one [`Fleet::run`] produces: the per-input output tensors
/// (in input order, byte-identical to unsharded [`Session::run`] outputs),
/// merged fault counters, the NoC's lifetime report and the integer fleet
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRun {
    /// Final activation tensor per input, in input order.
    pub outputs: Vec<Tensor3>,
    /// Fault-campaign counters merged across cores and inputs.
    pub faults: FaultStats,
    /// The interconnect's lifetime counters for this pass.
    pub noc: NocReport,
    /// The integer fleet report.
    pub report: FleetReport,
}

/// Non-zero atoms per input channel of an activation tensor at the given
/// value/atom granularity — the measured `T_i` the per-shard Eq 5 cycle
/// model consumes. Zero-atom squeezing means a value contributes one atom
/// per non-zero `atom_bits` chunk of its magnitude.
pub fn act_atoms_per_channel(act: &Tensor3, a_bits: u8, atom_bits: AtomBits) -> Vec<u64> {
    let (c, h, w) = act.shape();
    let g = atom_bits.bits() as u32;
    let slots = atom_bits.slots(a_bits) as u32;
    let mask = (1u32 << g) - 1;
    let mut atoms = vec![0u64; c];
    for (ci, count) in atoms.iter_mut().enumerate() {
        for y in 0..h {
            for x in 0..w {
                let v = act.get(ci, y, x).unsigned_abs();
                for s in 0..slots {
                    if (v >> (s * g)) & mask != 0 {
                        *count += 1;
                    }
                }
            }
        }
    }
    atoms
}

/// Order-sensitive digest over a tensor's values.
pub(crate) fn tensor_digest(h: u64, t: &Tensor3) -> u64 {
    let mut h = splitmix64(h ^ 0x7E45_0E5E);
    for &v in t.as_slice() {
        h = splitmix64(h ^ (v as u32 as u64));
    }
    h
}

/// Mutable per-run shard state of one replica group: which slots are
/// alive, and reshard overrides layered over the static plan/views.
struct GroupState {
    /// Global core id of each slot.
    cores: Vec<usize>,
    alive: Vec<bool>,
    /// `(slot, layer)` → resharded layer artifact (`None` = idles now).
    overrides: HashMap<(usize, usize), Option<Arc<CompiledLayer>>>,
    /// `layer` → post-reshard channel groups (slot-indexed).
    channel_overrides: HashMap<usize, Vec<Vec<usize>>>,
}

impl GroupState {
    fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }
}

/// The sharded fleet simulator: a compiled network, a validated
/// [`FleetConfig`], the static [`ShardPlan`] and per-slot shard views.
#[derive(Debug)]
pub struct Fleet {
    net: Arc<CompiledNetwork>,
    cfg: FleetConfig,
    plan: ShardPlan,
    /// One view per shard slot within a replica group; slots hold
    /// `Arc<CompiledLayer>` so per-run reshard state can share them.
    shards: Vec<Vec<Option<Arc<CompiledLayer>>>>,
    /// Unsharded session driving `group_size == 1` groups through the
    /// plain engine path.
    session: Session,
}

impl Fleet {
    /// Shards a compiled network per the fleet configuration.
    ///
    /// # Errors
    /// Returns [`EngineError::Config`] for invalid fleet configurations
    /// and propagates shard recompilation failures.
    pub fn try_new(net: Arc<CompiledNetwork>, cfg: FleetConfig) -> Result<Self, EngineError> {
        cfg.validate()?;
        let group_size = cfg.group_size();
        let plan = ShardPlan::compute(&net, group_size);
        assert!(
            plan.verify(&net),
            "shard plan must partition every layer's output channels"
        );
        let shards = (0..group_size)
            .map(|slot| {
                let view: ShardView = net.shard_view(&plan.slot_channels(slot))?;
                Ok(view
                    .layers()
                    .iter()
                    .cloned()
                    .map(|l| l.map(Arc::new))
                    .collect())
            })
            .collect::<Result<Vec<_>, EngineError>>()?;
        let session = Session::new(net.clone());
        Ok(Self {
            net,
            cfg,
            plan,
            shards,
            session,
        })
    }

    /// The compiled network the fleet serves.
    pub fn network(&self) -> &CompiledNetwork {
        &self.net
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The static shard plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The current shard layer of `slot` at `layer`, after any reshard.
    fn shard_layer<'a>(
        &'a self,
        state: &'a GroupState,
        slot: usize,
        li: usize,
    ) -> Option<&'a CompiledLayer> {
        match state.overrides.get(&(slot, li)) {
            Some(over) => over.as_deref(),
            None => self.shards[slot][li].as_deref(),
        }
    }

    /// Eq 5 compute cycles of one shard layer on the measured activation
    /// atom counts (`None` shard → 0).
    fn shard_cycles(
        &self,
        layer: Option<&CompiledLayer>,
        act_atoms: &[u64],
        input_layer: bool,
    ) -> u64 {
        let Some(layer) = layer else { return 0 };
        let workloads: Vec<ChannelWorkload> = layer
            .weight_atoms_per_channel()
            .iter()
            .enumerate()
            .map(|(channel, &weight_atoms)| ChannelWorkload {
                channel,
                act_atoms: act_atoms[channel],
                weight_atoms,
            })
            .collect();
        let strategy = if input_layer {
            BalanceStrategy::None
        } else {
            self.net.config().balancing
        };
        balance(
            &workloads,
            self.net.config().tiles,
            self.net.config().multipliers as u64,
            strategy,
        )
        .makespan()
    }

    /// Deterministic resharding after deaths at layer `li`: layers
    /// `li..` repartition over the group's remaining alive slots.
    fn reshard(&self, state: &mut GroupState, li: usize) -> Result<(), EngineError> {
        let alive_slots: Vec<usize> = (0..state.alive.len()).filter(|&s| state.alive[s]).collect();
        let cfg: RistrettoConfig = *self.net.config();
        for lj in li..self.net.layers().len() {
            let atoms = self.net.layers()[lj].weight_atoms_per_out_channel();
            let parts = partition_out_channels(&atoms, alive_slots.len());
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); state.alive.len()];
            for (i, &slot) in alive_slots.iter().enumerate() {
                groups[slot] = parts[i].clone();
            }
            for (slot, group) in groups.iter().enumerate() {
                let layer = if group.is_empty() {
                    None
                } else {
                    Some(Arc::new(self.net.layers()[lj].shard(group, &cfg)?))
                };
                state.overrides.insert((slot, lj), layer);
            }
            state.channel_overrides.insert(lj, groups);
        }
        Ok(())
    }

    /// Runs one input through a sharded replica group, returning the
    /// output tensor and the input's latency in cycles.
    #[allow(clippy::too_many_arguments)]
    fn run_sharded_input(
        &self,
        input: &Tensor3,
        campaign: Option<crate::fault::FaultConfig>,
        state: &mut GroupState,
        noc: &mut Noc,
        faults: &mut FaultStats,
        busy: &mut u64,
        idle: &mut u64,
        deaths: &mut u64,
        reshards: &mut u64,
    ) -> Result<(Tensor3, u64), EngineError> {
        let cfg = self.net.config();
        let mut act = input.clone();
        let mut latency = 0u64;
        for li in 0..self.net.layers().len() {
            let atoms =
                act_atoms_per_channel(&act, self.net.layers()[li].a_bits.bits(), cfg.atom_bits);
            // Core deaths fire mid-layer: the aborted attempt's makespan is
            // paid, the group reshards, and the layer re-executes.
            if let Some(campaign) = self.cfg.core_deaths {
                let new_dead: Vec<usize> = (0..state.alive.len())
                    .filter(|&s| state.alive[s] && campaign.decide(li, state.cores[s]))
                    .collect();
                if !new_dead.is_empty() && new_dead.len() < state.alive_count() {
                    let aborted = (0..state.alive.len())
                        .filter(|&s| state.alive[s])
                        .map(|s| self.shard_cycles(self.shard_layer(state, s, li), &atoms, li == 0))
                        .max()
                        .unwrap_or(0);
                    latency += aborted;
                    *idle += aborted * state.alive_count() as u64;
                    for &s in &new_dead {
                        state.alive[s] = false;
                        *deaths += 1;
                        obs::record(obs::Event::FleetCoreDeaths, 1);
                    }
                    self.reshard(state, li)?;
                    *reshards += 1;
                    obs::record(obs::Event::FleetReshards, 1);
                }
            }

            // Execute every alive slot's shard, in slot order (each shard
            // parallelizes internally over channels).
            let mut slot_out: Vec<Option<Tensor3>> = vec![None; state.alive.len()];
            let mut compute: Vec<u64> = vec![0; state.alive.len()];
            for slot in 0..state.alive.len() {
                if !state.alive[slot] {
                    continue;
                }
                let Some(layer) = self.shard_layer(state, slot, li) else {
                    continue;
                };
                let scratch = atomstream::kernel::CscScratch::new();
                let (out, _trace, layer_faults) = match campaign
                    .map(crate::fault::FaultInjector::new)
                {
                    None => {
                        let (out, trace) = layer.execute(self.net.csc_config(), &act, &scratch)?;
                        (out, trace, FaultStats::default())
                    }
                    Some(inj) => layer.execute_with_faults(
                        self.net.csc_config(),
                        &act,
                        &inj,
                        li,
                        cfg.acc_bits,
                    )?,
                };
                faults.merge(&layer_faults);
                compute[slot] = self.shard_cycles(Some(layer), &atoms, li == 0);
                slot_out[slot] = Some(out);
                obs::record(obs::Event::FleetShards, 1);
            }

            // Reassemble the full activation in global channel order.
            let channels: Vec<Vec<usize>> = match state.channel_overrides.get(&li) {
                Some(groups) => groups.clone(),
                None => self.plan.layers[li].clone(),
            };
            let (next, slice_bits) =
                assemble(&slot_out, &channels, self.net.layers()[li].out_bits as u64)?;

            // Exchange: every alive slot broadcasts its slice, on its
            // *global* NoC port (hybrid groups occupy a sub-range of the
            // ring).
            let mut global_bits = vec![0u64; self.cfg.cores];
            let mut global_alive = vec![false; self.cfg.cores];
            for slot in 0..state.alive.len() {
                global_bits[state.cores[slot]] = slice_bits[slot];
                global_alive[state.cores[slot]] = state.alive[slot];
            }
            let comm = noc.all_gather(&global_bits, &global_alive);
            let compute_max = compute.iter().copied().max().unwrap_or(0);
            let layer_span = compute_max + comm;
            latency += layer_span;
            for (slot, &cycles) in compute.iter().enumerate() {
                if state.alive[slot] {
                    *busy += cycles;
                    *idle += layer_span - cycles;
                }
            }
            obs::record(obs::Event::FleetBusyCycles, compute.iter().sum());
            obs::record(obs::Event::FleetMakespanCycles, layer_span);
            act = next;
        }
        Ok((act, latency))
    }

    /// Runs one input on a single unsharded core (Batch groups) through
    /// the plain [`Session`] path, layer by layer so core deaths can
    /// migrate the input to another core.
    #[allow(clippy::too_many_arguments)]
    fn run_unsharded_input(
        &self,
        input: &Tensor3,
        campaign: Option<crate::fault::FaultConfig>,
        core: usize,
        alive: &mut [bool],
        noc: &mut Noc,
        faults: &mut FaultStats,
        busy: &mut u64,
        core_load: &mut [u64],
        deaths: &mut u64,
        reshards: &mut u64,
    ) -> Result<(Tensor3, u64), EngineError> {
        let cfg = self.net.config();
        let mut act = input.clone();
        let mut latency = 0u64;
        let mut owner = core;
        for li in 0..self.net.layers().len() {
            if let Some(campaign) = self.cfg.core_deaths {
                if alive[owner]
                    && campaign.decide(li, owner)
                    && alive.iter().filter(|&&a| a).count() > 1
                {
                    alive[owner] = false;
                    *deaths += 1;
                    obs::record(obs::Event::FleetCoreDeaths, 1);
                    // Migrate to the next alive core: the in-flight
                    // activation crosses the NoC once.
                    let adopter = (owner + 1..owner + alive.len())
                        .map(|c| c % alive.len())
                        .find(|&c| alive[c])
                        .expect("at least one alive core remains");
                    let bits = act.count_nonzero() as u64
                        * (self.net.layers()[li].a_bits.bits() as u64 + COO_META_BITS);
                    let mut slice = vec![0u64; alive.len()];
                    slice[owner] = bits;
                    let mut reach = vec![false; alive.len()];
                    reach[owner] = true;
                    reach[adopter] = true;
                    latency += noc.all_gather(&slice, &reach);
                    owner = adopter;
                    *reshards += 1;
                    obs::record(obs::Event::FleetReshards, 1);
                }
            }
            let atoms =
                act_atoms_per_channel(&act, self.net.layers()[li].a_bits.bits(), cfg.atom_bits);
            let (next, _trace, layer_faults) = self.session.run_layer_with(li, &act, campaign)?;
            faults.merge(&layer_faults);
            let cycles = self.shard_cycles(Some(&self.net.layers()[li]), &atoms, li == 0);
            latency += cycles;
            *busy += cycles;
            core_load[owner] += cycles;
            obs::record(obs::Event::FleetBusyCycles, cycles);
            obs::record(obs::Event::FleetShards, 1);
            act = next;
        }
        obs::record(obs::Event::FleetMakespanCycles, latency);
        Ok((act, latency))
    }

    /// Runs a batch of inputs through the fleet.
    ///
    /// # Errors
    /// Same surface as [`Session::run`], plus shard recompilation errors
    /// from deterministic resharding after a core death.
    pub fn run(&self, inputs: &[Tensor3]) -> Result<FleetRun, EngineError> {
        let refs: Vec<&Tensor3> = inputs.iter().collect();
        self.run_with(&refs, self.net.config().faults)
    }

    /// [`Fleet::run`] over borrowed inputs and an explicit fault campaign.
    ///
    /// The serving scheduler dispatches through this surface: batches
    /// borrow their queued input tensors instead of cloning them, and a
    /// tripped circuit breaker substitutes
    /// [`FaultConfig::forced_recovery`](crate::fault::FaultConfig::forced_recovery)
    /// for the compiled campaign. Passing the compiled campaign reproduces
    /// [`Fleet::run`] byte-exactly.
    ///
    /// # Errors
    /// Same surface as [`Fleet::run`].
    pub fn run_with(
        &self,
        inputs: &[&Tensor3],
        campaign: Option<crate::fault::FaultConfig>,
    ) -> Result<FleetRun, EngineError> {
        let _span = obs::span("fleet.run");
        obs::record(obs::Event::FleetRuns, 1);
        obs::record(obs::Event::FleetCores, self.cfg.cores as u64);
        let group_size = self.cfg.group_size();
        let groups = self.cfg.groups();
        let mut noc = Noc::new(self.cfg.cores, self.cfg.noc);
        let mut faults = FaultStats::default();
        let (mut busy, mut idle) = (0u64, 0u64);
        let (mut deaths, mut reshards) = (0u64, 0u64);
        let mut outputs: Vec<Tensor3> = Vec::with_capacity(inputs.len());
        let mut latency_first = 0u64;
        let makespan;

        if group_size == 1 {
            // Batch strategy: independent cores, round-robin dispatch.
            let mut alive = vec![true; self.cfg.cores];
            let mut core_load = vec![0u64; self.cfg.cores];
            for (i, input) in inputs.iter().enumerate() {
                let dispatch: Vec<usize> = (0..self.cfg.cores).filter(|&c| alive[c]).collect();
                let core = dispatch[i % dispatch.len()];
                let (out, latency) = self.run_unsharded_input(
                    input,
                    campaign,
                    core,
                    &mut alive,
                    &mut noc,
                    &mut faults,
                    &mut busy,
                    &mut core_load,
                    &mut deaths,
                    &mut reshards,
                )?;
                if i == 0 {
                    latency_first = latency;
                }
                outputs.push(out);
            }
            makespan = core_load.iter().copied().max().unwrap_or(0);
            let total: u64 = core_load.iter().sum();
            let fleet_idle =
                (makespan * alive.iter().filter(|&&a| a).count() as u64).saturating_sub(total);
            idle += fleet_idle;
        } else {
            // Sharded groups: round-robin inputs over replica groups;
            // groups accumulate independent timelines.
            let mut states: Vec<GroupState> = (0..groups)
                .map(|g| GroupState {
                    cores: (g * group_size..(g + 1) * group_size).collect(),
                    alive: vec![true; group_size],
                    overrides: HashMap::new(),
                    channel_overrides: HashMap::new(),
                })
                .collect();
            let mut group_time = vec![0u64; groups];
            for (i, input) in inputs.iter().enumerate() {
                let g = i % groups;
                let (out, latency) = self.run_sharded_input(
                    input,
                    campaign,
                    &mut states[g],
                    &mut noc,
                    &mut faults,
                    &mut busy,
                    &mut idle,
                    &mut deaths,
                    &mut reshards,
                )?;
                if i == 0 {
                    latency_first = latency;
                }
                group_time[g] += latency;
                outputs.push(out);
            }
            makespan = group_time.iter().copied().max().unwrap_or(0);
        }

        obs::record(obs::Event::FleetIdleCycles, idle);
        let noc_report = noc.report().clone();
        obs::record(obs::Event::FleetLinkBits, noc_report.link_bits);
        obs::record(obs::Event::FleetLinkBusyCycles, noc_report.link_busy_cycles);
        obs::record(obs::Event::FleetQueueHighwater, noc_report.queue_highwater);

        let mut output_digest = 0x00D1_6E57u64;
        for out in &outputs {
            output_digest = tensor_digest(output_digest, out);
        }
        let report = FleetReport {
            network: self.net.name().to_string(),
            strategy: self.cfg.strategy.to_string(),
            cores: self.cfg.cores,
            inputs: inputs.len() as u64,
            makespan_cycles: makespan,
            latency_cycles: latency_first,
            busy_cycles: busy,
            idle_cycles: idle,
            link_bits: noc_report.link_bits,
            link_busy_cycles: noc_report.link_busy_cycles,
            queue_highwater: noc_report.queue_highwater,
            noc_digest: noc_report.digest(),
            output_digest,
            core_deaths: deaths,
            reshards,
        };
        Ok(FleetRun {
            outputs,
            faults,
            noc: noc_report,
            report,
        })
    }
}

/// Concatenates per-slot output slices back into the full activation
/// (global channel order) and measures each slot's compressed slice bits
/// for the exchange.
fn assemble(
    slot_out: &[Option<Tensor3>],
    channels: &[Vec<usize>],
    value_bits: u64,
) -> Result<(Tensor3, Vec<u64>), EngineError> {
    let (h, w) = slot_out
        .iter()
        .flatten()
        .next()
        .map(|t| {
            let (_, h, w) = t.shape();
            (h, w)
        })
        .expect("at least one slot produced output");
    let total_c: usize = channels.iter().map(Vec::len).sum();
    let mut next = Tensor3::zeros(total_c, h, w).map_err(atomstream::error::AtomError::from)?;
    let mut slice_bits = vec![0u64; slot_out.len()];
    for (slot, out) in slot_out.iter().enumerate() {
        let Some(out) = out else { continue };
        for (local, &global) in channels[slot].iter().enumerate() {
            for y in 0..h {
                for x in 0..w {
                    let v = out.get(local, y, x);
                    if v != 0 {
                        next.set(global, y, x, v);
                        slice_bits[slot] += value_bits + COO_META_BITS;
                    }
                }
            }
        }
    }
    Ok((next, slice_bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{compile, NetworkModel};
    use qnn::mini::MiniNetwork;
    use qnn::models::NetworkId;
    use qnn::quant::BitWidth;
    use qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};

    fn compiled_and_input(seed: u64) -> (Arc<CompiledNetwork>, Tensor3) {
        let mini = MiniNetwork::try_new(NetworkId::GoogLeNet).unwrap();
        let mut gen = WorkloadGen::new(seed);
        let wp = WeightProfile::benchmark(BitWidth::W4);
        let model = NetworkModel::from_mini(&mini, &mut gen, &wp).unwrap();
        let (c, h, w) = model.input;
        let input = gen
            .activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
            .unwrap();
        let net = compile(&model, &RistrettoConfig::paper_default()).unwrap();
        (net, input)
    }

    #[test]
    fn plan_partitions_every_layer() {
        let (net, _) = compiled_and_input(3);
        for cores in [1, 2, 4, 8] {
            let plan = ShardPlan::compute(&net, cores);
            assert!(plan.verify(&net), "{cores} cores");
            assert_eq!(plan.group_size, cores);
            // Digest is stable and sensitive.
            assert_eq!(plan.digest(), ShardPlan::compute(&net, cores).digest());
        }
        assert_ne!(
            ShardPlan::compute(&net, 2).digest(),
            ShardPlan::compute(&net, 4).digest()
        );
    }

    #[test]
    fn one_core_fleet_matches_session_bytes() {
        let (net, input) = compiled_and_input(5);
        let session_out = Session::new(net.clone()).run(&input).unwrap().output;
        for strategy in [ShardStrategy::Batch, ShardStrategy::OutputChannel] {
            let fleet = Fleet::try_new(net.clone(), FleetConfig::new(1, strategy)).unwrap();
            let run = fleet.run(std::slice::from_ref(&input)).unwrap();
            assert_eq!(run.outputs[0], session_out, "{strategy}");
            assert_eq!(run.report.link_bits, 0, "{strategy}");
        }
    }

    #[test]
    fn output_channel_sharding_is_invariant_across_core_counts() {
        let (net, input) = compiled_and_input(7);
        let reference = Session::new(net.clone()).run(&input).unwrap().output;
        let mut latencies = Vec::new();
        for cores in [2, 4] {
            let fleet = Fleet::try_new(
                net.clone(),
                FleetConfig::new(cores, ShardStrategy::OutputChannel),
            )
            .unwrap();
            let run = fleet.run(std::slice::from_ref(&input)).unwrap();
            assert_eq!(run.outputs[0], reference, "{cores} cores");
            assert!(run.report.link_bits > 0);
            assert!(run.report.queue_highwater >= 1);
            latencies.push(run.report.latency_cycles);
        }
        // More cores cut single-input compute latency (comm may offset
        // some of it, but on GoogLeNet mini the win dominates).
        assert!(latencies[1] < latencies[0] * 2);
    }

    #[test]
    fn batch_strategy_scales_throughput() {
        let (net, input) = compiled_and_input(9);
        let inputs: Vec<Tensor3> = (0..4).map(|_| input.clone()).collect();
        let one = Fleet::try_new(net.clone(), FleetConfig::new(1, ShardStrategy::Batch))
            .unwrap()
            .run(&inputs)
            .unwrap();
        let four = Fleet::try_new(net.clone(), FleetConfig::new(4, ShardStrategy::Batch))
            .unwrap()
            .run(&inputs)
            .unwrap();
        assert_eq!(one.outputs, four.outputs);
        assert_eq!(four.report.makespan_cycles * 4, one.report.makespan_cycles);
        assert_eq!(one.report.link_bits, 0);
        // Integer throughput ratio: 4 cores do 4x the inputs per cycle.
        assert!(four.report.throughput_per_mcycle() > 3.9 * one.report.throughput_per_mcycle());
    }

    #[test]
    fn hybrid_combines_both_axes() {
        let (net, input) = compiled_and_input(11);
        let inputs: Vec<Tensor3> = (0..2).map(|_| input.clone()).collect();
        let cfg = FleetConfig::new(4, ShardStrategy::Hybrid(2));
        assert_eq!(cfg.group_size(), 2);
        assert_eq!(cfg.groups(), 2);
        let run = Fleet::try_new(net.clone(), cfg)
            .unwrap()
            .run(&inputs)
            .unwrap();
        let reference = Session::new(net).run(&input).unwrap().output;
        assert_eq!(run.outputs[0], reference);
        assert_eq!(run.outputs[1], reference);
        assert!(run.report.link_bits > 0);
    }

    #[test]
    fn core_death_reshards_and_reproduces_fault_free_bytes() {
        let (net, input) = compiled_and_input(13);
        let clean = Fleet::try_new(
            net.clone(),
            FleetConfig::new(4, ShardStrategy::OutputChannel),
        )
        .unwrap()
        .run(std::slice::from_ref(&input))
        .unwrap();
        // A hot campaign: every (layer, core) site rolls at 20%.
        let cfg = FleetConfig::new(4, ShardStrategy::OutputChannel)
            .with_core_deaths(Some(crate::fault::CoreDeathConfig::new(21, 200_000)));
        let chaotic = Fleet::try_new(net, cfg).unwrap();
        let run = chaotic.run(std::slice::from_ref(&input)).unwrap();
        assert!(run.report.core_deaths > 0, "campaign must fire");
        assert!(run.report.reshards > 0);
        assert_eq!(run.outputs, clean.outputs, "recovery must be byte-exact");
        assert_eq!(run.report.output_digest, clean.report.output_digest);
        assert!(run.report.latency_cycles > clean.report.latency_cycles);
        // Determinism: same campaign, same bytes and counters.
        let again = chaotic.run(std::slice::from_ref(&input)).unwrap();
        assert_eq!(run.report, again.report);
    }

    #[test]
    fn act_atom_counts_match_compression() {
        use atomstream::compress::compress_activations;
        use atomstream::flatten::FlatActivation;
        let (_, input) = compiled_and_input(17);
        let atoms = act_atoms_per_channel(&input, 8, AtomBits::B2);
        let (_, h, w) = input.shape();
        for (ci, &expected) in atoms.iter().enumerate() {
            let flat: Vec<FlatActivation> = (0..h)
                .flat_map(|y| (0..w).map(move |x| (y, x)))
                .filter_map(|(y, x)| {
                    let value = input.get(ci, y, x);
                    (value != 0).then_some(FlatActivation {
                        value,
                        x: x as u16,
                        y: y as u16,
                    })
                })
                .collect();
            let stream = compress_activations(&flat, 8, AtomBits::B2).unwrap();
            assert_eq!(expected, stream.len() as u64, "channel {ci}");
        }
    }

    #[test]
    fn invalid_fleet_configs_are_typed_errors() {
        use crate::config::ConfigError;
        let (net, _) = compiled_and_input(19);
        let err =
            Fleet::try_new(net.clone(), FleetConfig::new(0, ShardStrategy::Batch)).unwrap_err();
        assert_eq!(err, EngineError::Config(ConfigError::ZeroCores));
        let err = Fleet::try_new(net, FleetConfig::new(4, ShardStrategy::Hybrid(3))).unwrap_err();
        assert_eq!(
            err,
            EngineError::Config(ConfigError::InvalidReplicas {
                replicas: 3,
                cores: 4
            })
        );
    }

    #[test]
    fn hybrid_with_more_replicas_than_cores_is_a_typed_error() {
        use crate::config::ConfigError;
        let (net, _) = compiled_and_input(23);
        // R > cores can never divide the core count, so the degenerate
        // "replica groups with zero cores" plan is unreachable: validation
        // rejects it up front with a typed error naming both numbers.
        for replicas in [5, 8, 1000] {
            let err = Fleet::try_new(
                net.clone(),
                FleetConfig::new(4, ShardStrategy::Hybrid(replicas)),
            )
            .unwrap_err();
            assert_eq!(
                err,
                EngineError::Config(ConfigError::InvalidReplicas { replicas, cores: 4 }),
                "Hybrid({replicas}) on 4 cores"
            );
        }
        // R == cores is the legal degenerate end of the axis: group size 1,
        // i.e. plain batch parallelism.
        let (net, _) = compiled_and_input(23);
        let cfg = FleetConfig::new(4, ShardStrategy::Hybrid(4));
        assert_eq!(cfg.group_size(), 1);
        assert!(Fleet::try_new(net, cfg).is_ok());
    }

    /// A network whose middle layer has a single output channel — fewer
    /// channels than any multi-core fleet has slots.
    fn one_channel_model(seed: u64) -> (NetworkModel, Tensor3) {
        let mut gen = WorkloadGen::new(seed);
        let wp = WeightProfile::benchmark(BitWidth::W4);
        let geom = qnn::conv::ConvGeometry {
            stride: 1,
            padding: 1,
        };
        let mk = |name: &str, out_c: usize, in_c: usize, gen: &mut WorkloadGen| {
            crate::pipeline::PipelineLayer {
                name: name.to_string(),
                kernels: gen.weights(out_c, in_c, 3, 3, &wp).unwrap(),
                geom,
                w_bits: wp.bits,
                a_bits: BitWidth::W8,
                requant_shift: 5,
                out_bits: 8,
                pool: None,
            }
        };
        let layers = vec![
            mk("wide", 6, 3, &mut gen),
            mk("bottleneck", 1, 6, &mut gen),
            mk("head", 4, 1, &mut gen),
        ];
        let model = NetworkModel::new("one-channel", (3, 8, 8), layers);
        let input = gen
            .activations(3, 8, 8, &ActivationProfile::new(BitWidth::W8))
            .unwrap();
        (model, input)
    }

    #[test]
    fn more_cores_than_output_channels_degrades_deterministically() {
        // A 1-output-channel layer sharded across 4 (and 8) cores: the LPT
        // partition leaves most slots empty. That must not panic or
        // produce a degenerate plan — empty slots idle through the layer
        // and the assembled bytes stay identical to the single-core
        // session.
        let (model, input) = one_channel_model(29);
        let net = compile(&model, &RistrettoConfig::paper_default()).unwrap();
        let reference = Session::new(net.clone()).run(&input).unwrap().output;
        for cores in [2, 4, 8] {
            let fleet = Fleet::try_new(
                net.clone(),
                FleetConfig::new(cores, ShardStrategy::OutputChannel),
            )
            .unwrap();
            // The plan still exactly partitions every layer; the
            // bottleneck layer's single channel lands in exactly one slot.
            assert!(fleet.plan().verify(&net), "{cores} cores");
            let occupied: usize = fleet.plan().layers[1]
                .iter()
                .filter(|g| !g.is_empty())
                .count();
            assert_eq!(occupied, 1, "{cores} cores");
            let run = fleet.run(std::slice::from_ref(&input)).unwrap();
            assert_eq!(run.outputs[0], reference, "{cores} cores");
            // Determinism: a second pass reproduces the report bytes.
            let again = fleet.run(std::slice::from_ref(&input)).unwrap();
            assert_eq!(run.report, again.report, "{cores} cores");
        }
    }
}
