//! Integer-only serving report: every serialized field is a request
//! count, a microtick total or a digest, so the JSON rendering is
//! byte-identical cross-platform and at any thread count. Ratios (e.g.
//! requests per megatick) are derived at display time, never stored.

use super::server::ServerStats;
use serde::{Deserialize, Serialize};

/// Per-tenant admission and service counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Requests this tenant offered (admitted + rejected).
    pub submitted: u64,
    /// Requests completed for this tenant.
    pub served: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
}

/// The serialized outcome of one seeded serving run.
///
/// Conservation invariant: `submitted == served + rejected` once the
/// server has drained (no requests in flight), globally and per tenant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Load-generator seed.
    pub seed: u64,
    /// Closed-loop clients driven.
    pub clients: u64,
    /// Tenants scheduled across.
    pub tenants: u64,
    /// Registered model names, in registration order.
    pub models: Vec<String>,
    /// Requests offered to admission control.
    pub submitted: u64,
    /// Requests completed.
    pub served: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Batches routed through the multi-core fleet lane.
    pub fleet_batches: u64,
    /// `histogram[k-1]` = batches that carried exactly `k` requests.
    pub batch_histogram: Vec<u64>,
    /// Deepest queue occupancy observed at any admission.
    pub queue_depth_max: u64,
    /// Per-tenant counts, indexed by tenant id.
    pub per_tenant: Vec<TenantStats>,
    /// Median completion latency in microticks (nearest rank).
    pub latency_p50_ticks: u64,
    /// 90th-percentile completion latency in microticks.
    pub latency_p90_ticks: u64,
    /// 99th-percentile completion latency in microticks.
    pub latency_p99_ticks: u64,
    /// Worst completion latency in microticks.
    pub latency_max_ticks: u64,
    /// Lane busy microticks summed over all dispatches.
    pub busy_ticks: u64,
    /// Microticks charged to fault detection and recovery (the chaos
    /// campaign's SLO-visible cost; zero on a quiescent run).
    pub fault_penalty_ticks: u64,
    /// Faults injected by the chaos campaign.
    pub faults_injected: u64,
    /// Faults detected by the online monitors.
    pub faults_detected: u64,
    /// Last completion tick — the drain makespan.
    pub makespan_ticks: u64,
    /// Order-insensitive fold over every completed output tensor, keyed
    /// by each request's stable `(client, seq)` identity (the
    /// no-silent-corruption witness: a chaos run must reproduce the
    /// quiescent digest exactly even though its batching differs).
    pub output_digest: u64,
}

impl ServeReport {
    /// Assembles the report from the server's counters plus the load
    /// generator's identity fields.
    pub fn from_stats(
        stats: &ServerStats,
        seed: u64,
        clients: u64,
        tenants: u64,
        models: Vec<String>,
    ) -> Self {
        let mut lat = stats.latencies.clone();
        lat.sort_unstable();
        Self {
            seed,
            clients,
            tenants,
            models,
            submitted: stats.submitted,
            served: stats.served,
            rejected: stats.rejected,
            batches: stats.batches,
            fleet_batches: stats.fleet_batches,
            batch_histogram: stats.batch_histogram.clone(),
            queue_depth_max: stats.queue_highwater,
            per_tenant: stats
                .per_tenant
                .iter()
                .map(|&(submitted, served, rejected)| TenantStats {
                    submitted,
                    served,
                    rejected,
                })
                .collect(),
            latency_p50_ticks: percentile(&lat, 50),
            latency_p90_ticks: percentile(&lat, 90),
            latency_p99_ticks: percentile(&lat, 99),
            latency_max_ticks: lat.last().copied().unwrap_or(0),
            busy_ticks: stats.busy_ticks,
            fault_penalty_ticks: stats.fault_penalty_ticks,
            faults_injected: stats.faults_injected,
            faults_detected: stats.faults_detected,
            makespan_ticks: stats.last_finish,
            output_digest: stats.output_digest(),
        }
    }

    /// Served requests per million microticks — derived, never
    /// serialized.
    pub fn throughput_per_mtick(&self) -> f64 {
        if self.makespan_ticks == 0 {
            return 0.0;
        }
        self.served as f64 * 1e6 / self.makespan_ticks as f64
    }

    /// Whether `submitted == served + rejected` globally and per tenant —
    /// the post-drain conservation invariant.
    pub fn conserves_requests(&self) -> bool {
        self.submitted == self.served + self.rejected
            && self
                .per_tenant
                .iter()
                .all(|t| t.submitted == t.served + t.rejected)
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 for empty).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * p).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 90), 90);
        assert_eq!(percentile(&v, 99), 99);
        let v: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&v, 50), 5);
        assert_eq!(percentile(&v, 99), 10);
    }
}
