//! Integer-only serving report: every serialized field is a request
//! count, a microtick total or a digest, so the JSON rendering is
//! byte-identical cross-platform and at any thread count. Ratios (e.g.
//! requests per megatick) are derived at display time, never stored.

use super::server::ServerStats;
use super::SloClass;
use serde::{Deserialize, Serialize};

/// Per-tenant admission and service counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Requests this tenant offered (admitted + rejected).
    pub submitted: u64,
    /// Requests completed for this tenant.
    pub served: u64,
    /// Requests refused by admission control (queue full or brownout).
    pub rejected: u64,
    /// Requests shed at dispatch because their deadline had expired.
    pub shed: u64,
}

/// Per-SLO-class aggregate: tenant counters rolled up by class, plus the
/// class's own latency tail — the table that shows brownout protecting
/// interactive p99 at the cost of best-effort shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassStats {
    /// The SLO class this row aggregates.
    pub class: SloClass,
    /// Requests offered by tenants of this class.
    pub submitted: u64,
    /// Requests completed for tenants of this class.
    pub served: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Requests shed at dispatch on an expired deadline.
    pub shed: u64,
    /// Median completion latency in microticks (nearest rank; 0 when the
    /// class served nothing).
    pub latency_p50_ticks: u64,
    /// 99th-percentile completion latency in microticks.
    pub latency_p99_ticks: u64,
}

/// The chaos-under-load witness attached by `repro serve --chaos`: both
/// the chaos run and its quiescent twin fold the output digests of the
/// `(client, seq)` pairs *both* runs served. Equality proves that no
/// shed, retried, rerouted or degraded request silently corrupted an
/// output — the runs may serve different survivor sets, but everything
/// they both served is byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosTwin {
    /// `(client, seq)` pairs served by both runs.
    pub survivors: u64,
    /// The chaos run's digest fold over the shared survivor set.
    pub survivor_digest: u64,
    /// The quiescent twin's fold over the same set — must equal
    /// `survivor_digest`.
    pub twin_survivor_digest: u64,
}

/// The serialized outcome of one seeded serving run.
///
/// Conservation invariant: `submitted == served + rejected + shed` once
/// the server has drained (no requests in flight) — globally, per tenant
/// and per SLO class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Load-generator seed.
    pub seed: u64,
    /// Closed-loop clients driven.
    pub clients: u64,
    /// Tenants scheduled across.
    pub tenants: u64,
    /// Registered model names, in registration order.
    pub models: Vec<String>,
    /// Requests offered to admission control.
    pub submitted: u64,
    /// Requests completed.
    pub served: u64,
    /// Requests refused by admission control (queue full or brownout).
    pub rejected: u64,
    /// Requests shed at dispatch because their deadline had expired.
    pub shed: u64,
    /// The brownout subset of `rejected`.
    pub brownout_rejected: u64,
    /// Client retries attempted after a rejection (backoff re-offers).
    pub retries: u64,
    /// Requests abandoned after exhausting their retry budget.
    pub retry_exhausted: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Batches routed through the multi-core fleet lane.
    pub fleet_batches: u64,
    /// Batches the SLO-aware trigger pulled in ahead of the normal bound.
    pub deadline_early_dispatches: u64,
    /// Circuit-breaker trips (closed→open and failed-probe re-trips).
    pub breaker_trips: u64,
    /// Batches served on the degraded route while a breaker was open.
    pub breaker_open_batches: u64,
    /// Half-open probes dispatched after a breaker cooldown.
    pub breaker_half_opens: u64,
    /// Batches re-run with recovery forced after a fault abort.
    pub breaker_reruns: u64,
    /// `histogram[k-1]` = batches that carried exactly `k` requests.
    pub batch_histogram: Vec<u64>,
    /// Deepest queue occupancy observed at any admission.
    pub queue_depth_max: u64,
    /// Per-tenant counts, indexed by tenant id.
    pub per_tenant: Vec<TenantStats>,
    /// Per-SLO-class rollups, always all three classes in
    /// [`SloClass::ALL`] order.
    pub per_class: Vec<ClassStats>,
    /// Median completion latency in microticks (nearest rank).
    pub latency_p50_ticks: u64,
    /// 90th-percentile completion latency in microticks.
    pub latency_p90_ticks: u64,
    /// 99th-percentile completion latency in microticks.
    pub latency_p99_ticks: u64,
    /// Worst completion latency in microticks.
    pub latency_max_ticks: u64,
    /// Lane busy microticks summed over all dispatches.
    pub busy_ticks: u64,
    /// Microticks charged to fault detection and recovery (the chaos
    /// campaign's SLO-visible cost; zero on a quiescent run).
    pub fault_penalty_ticks: u64,
    /// Faults injected by the chaos campaign.
    pub faults_injected: u64,
    /// Faults detected by the online monitors.
    pub faults_detected: u64,
    /// Last completion tick — the drain makespan.
    pub makespan_ticks: u64,
    /// Order-insensitive fold over every completed output tensor, keyed
    /// by each request's stable `(client, seq)` identity (the
    /// no-silent-corruption witness: a chaos run must reproduce the
    /// quiescent digest exactly even though its batching differs).
    pub output_digest: u64,
    /// Intersection digests against a quiescent twin run — attached only
    /// by chaos harnesses that ran one (`null` otherwise).
    pub chaos_twin: Option<ChaosTwin>,
}

impl ServeReport {
    /// Assembles the report from the server's counters plus the load
    /// generator's identity fields: `classes` maps tenant id to SLO
    /// class, `retries`/`retry_exhausted` come from the client side.
    #[allow(clippy::too_many_arguments)] // one scalar per report identity field
    pub fn from_stats(
        stats: &ServerStats,
        seed: u64,
        clients: u64,
        tenants: u64,
        models: Vec<String>,
        classes: &[SloClass],
        retries: u64,
        retry_exhausted: u64,
    ) -> Self {
        let mut lat = stats.latencies.clone();
        lat.sort_unstable();
        let per_class = SloClass::ALL
            .iter()
            .map(|&class| {
                let (mut submitted, mut served, mut rejected, mut shed) = (0, 0, 0, 0);
                for (t, counts) in stats.per_tenant.iter().enumerate() {
                    if classes[t] == class {
                        submitted += counts.0;
                        served += counts.1;
                        rejected += counts.2;
                        shed += counts.3;
                    }
                }
                let mut class_lat = stats.latencies_by_class[class.index()].clone();
                class_lat.sort_unstable();
                ClassStats {
                    class,
                    submitted,
                    served,
                    rejected,
                    shed,
                    latency_p50_ticks: percentile(&class_lat, 50),
                    latency_p99_ticks: percentile(&class_lat, 99),
                }
            })
            .collect();
        Self {
            seed,
            clients,
            tenants,
            models,
            submitted: stats.submitted,
            served: stats.served,
            rejected: stats.rejected,
            shed: stats.shed,
            brownout_rejected: stats.brownout_rejected,
            retries,
            retry_exhausted,
            batches: stats.batches,
            fleet_batches: stats.fleet_batches,
            deadline_early_dispatches: stats.deadline_early_dispatches,
            breaker_trips: stats.breaker_trips,
            breaker_open_batches: stats.breaker_open_batches,
            breaker_half_opens: stats.breaker_half_opens,
            breaker_reruns: stats.breaker_reruns,
            batch_histogram: stats.batch_histogram.clone(),
            queue_depth_max: stats.queue_highwater,
            per_tenant: stats
                .per_tenant
                .iter()
                .map(|&(submitted, served, rejected, shed)| TenantStats {
                    submitted,
                    served,
                    rejected,
                    shed,
                })
                .collect(),
            per_class,
            latency_p50_ticks: percentile(&lat, 50),
            latency_p90_ticks: percentile(&lat, 90),
            latency_p99_ticks: percentile(&lat, 99),
            latency_max_ticks: lat.last().copied().unwrap_or(0),
            busy_ticks: stats.busy_ticks,
            fault_penalty_ticks: stats.fault_penalty_ticks,
            faults_injected: stats.faults_injected,
            faults_detected: stats.faults_detected,
            makespan_ticks: stats.last_finish,
            output_digest: stats.output_digest(),
            chaos_twin: None,
        }
    }

    /// Served requests per million microticks — derived, never
    /// serialized.
    pub fn throughput_per_mtick(&self) -> f64 {
        if self.makespan_ticks == 0 {
            return 0.0;
        }
        self.served as f64 * 1e6 / self.makespan_ticks as f64
    }

    /// Whether `submitted == served + rejected + shed` globally, per
    /// tenant and per SLO class — the post-drain conservation invariant.
    pub fn conserves_requests(&self) -> bool {
        self.submitted == self.served + self.rejected + self.shed
            && self
                .per_tenant
                .iter()
                .all(|t| t.submitted == t.served + t.rejected + t.shed)
            && self
                .per_class
                .iter()
                .all(|c| c.submitted == c.served + c.rejected + c.shed)
            && self.per_class.iter().map(|c| c.submitted).sum::<u64>() == self.submitted
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 for empty).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * p).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 90), 90);
        assert_eq!(percentile(&v, 99), 99);
        let v: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&v, 50), 5);
        assert_eq!(percentile(&v, 99), 10);
    }

    #[test]
    fn conservation_checks_every_level() {
        let stats = ServerStats {
            submitted: 10,
            served: 7,
            rejected: 2,
            shed: 1,
            per_tenant: vec![(6, 4, 1, 1), (4, 3, 1, 0)],
            ..ServerStats::default()
        };
        let report = ServeReport::from_stats(
            &stats,
            1,
            2,
            2,
            vec!["m".into()],
            &[SloClass::Interactive, SloClass::BestEffort],
            0,
            0,
        );
        assert!(report.conserves_requests());
        assert_eq!(report.per_class[0].submitted, 6);
        assert_eq!(report.per_class[2].submitted, 4);
        assert_eq!(report.per_class[1].submitted, 0);
        let mut broken = report.clone();
        broken.shed = 0;
        assert!(!broken.conserves_requests());
        let mut broken = report.clone();
        broken.per_tenant[0].shed = 0;
        assert!(!broken.conserves_requests());
        let mut broken = report;
        broken.per_class[2].served = 0;
        assert!(!broken.conserves_requests());
    }

    #[test]
    fn chaos_twin_round_trips() {
        let stats = ServerStats::default();
        let mut report =
            ServeReport::from_stats(&stats, 1, 1, 1, vec!["m".into()], &[SloClass::Batch], 0, 0);
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("\"chaos_twin\":null"));
        report.chaos_twin = Some(ChaosTwin {
            survivors: 3,
            survivor_digest: 42,
            twin_survivor_digest: 42,
        });
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("\"survivors\":3"));
        let back: ServeReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, report);
    }
}
