//! Content-addressed model registry: one compiled network per
//! `(network, config)` pair, shared by every request that targets it.

use super::{ServeConfig, ServeError};
use crate::config::{FleetConfig, RistrettoConfig};
use crate::engine::{compile, CompiledNetwork, NetworkModel};
use crate::fleet::{Fleet, ShardStrategy};
use crate::modelcache::{CacheKey, ModelCache};
use std::sync::Arc;

/// Handle to a registered model; indexes the registry's entry table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelId(pub usize);

/// One registered `(network, config)` pair and its execution lanes.
pub struct ModelEntry {
    /// The content address the entry is deduplicated by.
    pub key: CacheKey,
    /// The compiled network all lanes share.
    pub net: Arc<CompiledNetwork>,
    /// Single-core lane small batches run on.
    pub lane: Fleet,
    /// Multi-core batch-sharded lane for large batches (`None` when the
    /// serve config disables fleet routing).
    pub fleet: Option<Fleet>,
}

/// A content-addressed registry of compiled networks.
///
/// Registration is keyed on [`CacheKey::derive`], so two tenants asking
/// for the same network under the same [`RistrettoConfig`] share one
/// [`CompiledNetwork`] (and its lanes) — compile once, serve many. With a
/// [`ModelCache`] attached, cold registrations go through
/// [`ModelCache::compile_cached`] and so load verified on-disk artifacts
/// when present.
pub struct ModelRegistry {
    cache: Option<ModelCache>,
    entries: Vec<ModelEntry>,
}

impl ModelRegistry {
    /// An empty registry; `cache` backs cold compiles when present.
    pub fn new(cache: Option<ModelCache>) -> Self {
        Self {
            cache,
            entries: Vec::new(),
        }
    }

    /// Registers a `(model, config)` pair, compiling it (through the
    /// attached cache if any) unless an entry with the same content
    /// address already exists.
    ///
    /// # Errors
    /// Propagates compile and fleet-construction failures.
    pub fn register(
        &mut self,
        model: &NetworkModel,
        cfg: &RistrettoConfig,
        serve: &ServeConfig,
    ) -> Result<ModelId, ServeError> {
        let key = CacheKey::derive(model, cfg);
        if let Some(idx) = self.entries.iter().position(|e| e.key == key) {
            return Ok(ModelId(idx));
        }
        let net = match &self.cache {
            Some(cache) => cache.compile_cached(model, cfg)?,
            None => compile(model, cfg)?,
        };
        let lane = Fleet::try_new(net.clone(), FleetConfig::new(1, ShardStrategy::Batch))?;
        let fleet = if serve.fleet_cores > 1 {
            // Serve-level core-death campaigns land on the fleet lane
            // only: the single-core lane stays clean so the degradation
            // ladder always has a healthy rung to fall back to.
            Some(Fleet::try_new(
                net.clone(),
                FleetConfig::new(serve.fleet_cores, ShardStrategy::Batch)
                    .with_core_deaths(serve.core_deaths),
            )?)
        } else {
            None
        };
        self.entries.push(ModelEntry {
            key,
            net,
            lane,
            fleet,
        });
        Ok(ModelId(self.entries.len() - 1))
    }

    /// The entry behind a handle.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] for a stale or foreign handle.
    pub fn get(&self, id: ModelId) -> Result<&ModelEntry, ServeError> {
        self.entries.get(id.0).ok_or(ServeError::UnknownModel(id.0))
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered network names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| e.net.name().to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::mini::MiniNetwork;
    use qnn::models::NetworkId;
    use qnn::quant::BitWidth;
    use qnn::workload::{WeightProfile, WorkloadGen};

    fn model(seed: u64) -> NetworkModel {
        let mini = MiniNetwork::try_new(NetworkId::AlexNet).unwrap();
        let mut gen = WorkloadGen::new(seed);
        let wp = WeightProfile::benchmark(BitWidth::W4);
        NetworkModel::from_mini(&mini, &mut gen, &wp).unwrap()
    }

    #[test]
    fn registration_deduplicates_by_content_address() {
        let serve = ServeConfig::paper_default();
        let mut reg = ModelRegistry::new(None);
        let cfg = RistrettoConfig::paper_default();
        let a = reg.register(&model(1), &cfg, &serve).unwrap();
        let b = reg.register(&model(1), &cfg, &serve).unwrap();
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        // Same network, different weights → different content address.
        let c = reg.register(&model(2), &cfg, &serve).unwrap();
        assert_ne!(a, c);
        // Same weights, different config → different content address: the
        // per-tenant-precision shape the registry exists for.
        let half = RistrettoConfig::half_width();
        let d = reg.register(&model(1), &half, &serve).unwrap();
        assert_ne!(a, d);
        assert_eq!(reg.len(), 3);
        assert!(reg.get(ModelId(99)).is_err());
    }

    #[test]
    fn fleet_lane_tracks_serve_config() {
        let mut reg = ModelRegistry::new(None);
        let cfg = RistrettoConfig::paper_default();
        let mut serve = ServeConfig::paper_default();
        serve.fleet_cores = 1;
        let id = reg.register(&model(3), &cfg, &serve).unwrap();
        assert!(reg.get(id).unwrap().fleet.is_none());
        let mut reg = ModelRegistry::new(None);
        serve.fleet_cores = 4;
        let id = reg.register(&model(3), &cfg, &serve).unwrap();
        assert!(reg.get(id).unwrap().fleet.is_some());
    }
}
