//! The continuous-batching scheduler: virtual-time event loop, bounded
//! admission, weighted fair dequeue, per-model execution lanes.

use super::registry::{ModelEntry, ModelId, ModelRegistry};
use super::{ServeConfig, ServeError};
use crate::fault::FaultStats;
use crate::fleet::tensor_digest;
use qnn::tensor::Tensor3;
use std::collections::VecDeque;

/// One admitted request waiting in a lane queue.
struct Request {
    id: u64,
    tenant: usize,
    client: u64,
    /// Per-client admission sequence number: together with `client` it is
    /// the request's stable identity across runs whose interleaving
    /// differs (e.g. a chaos run vs its quiescent twin).
    seq: u64,
    input: Tensor3,
    submit: u64,
}

/// A finished request, reported back to the submitting client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The id `submit` returned.
    pub request: u64,
    /// Model the request ran on.
    pub model: ModelId,
    /// Tenant the request belonged to.
    pub tenant: usize,
    /// Opaque client tag passed at submission.
    pub client: u64,
    /// Microtick the request was admitted at.
    pub submit: u64,
    /// Microtick the batch carrying it completed at.
    pub finish: u64,
}

/// Per-model execution lane: its queue, fairness credits and busy horizon.
struct Lane {
    /// One FIFO per tenant, each in admission order.
    queues: Vec<VecDeque<Request>>,
    /// Smooth weighted-round-robin credit per tenant.
    credits: Vec<i64>,
    /// Virtual tick the lane is busy until.
    busy_until: u64,
}

impl Lane {
    fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// Integer counters a serving run accumulates; the load generator folds
/// them into the serialized [`ServeReport`](super::report::ServeReport).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests offered to admission control (admitted + rejected).
    pub submitted: u64,
    /// Requests completed.
    pub served: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Per-tenant `(submitted, served, rejected)` triples.
    pub per_tenant: Vec<(u64, u64, u64)>,
    /// Batches dispatched.
    pub batches: u64,
    /// Batches routed through the multi-core fleet lane.
    pub fleet_batches: u64,
    /// `histogram[k-1]` = batches that carried exactly `k` requests.
    pub batch_histogram: Vec<u64>,
    /// Deepest queue occupancy observed at any admission.
    pub queue_highwater: u64,
    /// Lane busy microticks across all dispatches.
    pub busy_ticks: u64,
    /// Microticks charged to fault detection and recovery.
    pub fault_penalty_ticks: u64,
    /// Faults injected by the chaos campaign, summed over structures.
    pub faults_injected: u64,
    /// Faults detected by the online monitors, summed over structures.
    pub faults_detected: u64,
    /// Completion latencies in microticks (sorted on demand for
    /// percentiles).
    pub latencies: Vec<u64>,
    /// `(client, seq, digest)` per completed request; folded in sorted
    /// order into the report's `output_digest`, so the witness is
    /// independent of batch composition and completion interleaving.
    pub request_digests: Vec<(u64, u64, u64)>,
    /// Latest completion tick (the drain makespan).
    pub last_finish: u64,
}

impl ServerStats {
    /// Order-insensitive fold of the per-request output digests: sorted
    /// by `(client, seq)` — a request's stable identity — then chained
    /// through splitmix64. Two runs that served the same requests with
    /// byte-identical outputs agree here even if their batch compositions
    /// differed; any corrupted output changes it.
    pub fn output_digest(&self) -> u64 {
        let mut digests = self.request_digests.clone();
        digests.sort_unstable();
        let mut h = 0x5E27Eu64;
        for (client, seq, d) in digests {
            h = crate::fault::splitmix64(h ^ client.rotate_left(40) ^ seq.rotate_left(17) ^ d);
        }
        h
    }
}

/// The long-lived in-process server: a [`ModelRegistry`], a bounded
/// queue, and a continuous-batching scheduler in virtual time (integer
/// microticks; see the [module docs](super) for the policy and the
/// determinism contract).
pub struct Server {
    registry: ModelRegistry,
    cfg: ServeConfig,
    lanes: Vec<Lane>,
    /// Batches in flight: `(finish, completions)`, kept sorted by finish.
    in_flight: Vec<(u64, Vec<Completion>)>,
    /// Admitted, not-yet-dispatched requests across all lanes.
    queued: usize,
    next_id: u64,
    /// Admissions seen per client tag (assigns `Request::seq`).
    client_seq: std::collections::HashMap<u64, u64>,
    /// Latest event tick processed; submissions are clamped to it so the
    /// timeline never runs backwards.
    horizon: u64,
    stats: ServerStats,
}

impl Server {
    /// Wraps a registry under a validated serving policy.
    ///
    /// # Errors
    /// [`ServeError::Config`] when the policy is inconsistent.
    pub fn new(registry: ModelRegistry, cfg: ServeConfig) -> Result<Self, ServeError> {
        cfg.validate()?;
        let tenants = cfg.tenants();
        let lanes = (0..registry.len())
            .map(|_| Lane {
                queues: (0..tenants).map(|_| VecDeque::new()).collect(),
                credits: vec![0; tenants],
                busy_until: 0,
            })
            .collect();
        let stats = ServerStats {
            per_tenant: vec![(0, 0, 0); tenants],
            batch_histogram: vec![0; cfg.max_batch],
            ..ServerStats::default()
        };
        Ok(Self {
            registry,
            cfg,
            lanes,
            in_flight: Vec::new(),
            queued: 0,
            next_id: 0,
            client_seq: std::collections::HashMap::new(),
            horizon: 0,
            stats,
        })
    }

    /// The registry the server schedules over.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The serving policy in force.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Requests admitted but not yet completed (queued + in flight).
    pub fn outstanding(&self) -> usize {
        self.queued + self.in_flight.iter().map(|(_, c)| c.len()).sum::<usize>()
    }

    /// Offers one request to admission control at microtick `now`.
    /// Returns the request id on admission.
    ///
    /// # Errors
    /// [`ServeError::Rejected`] when the bounded queue is at capacity
    /// (the request is counted, not enqueued), [`ServeError::UnknownModel`]
    /// / [`ServeError::UnknownTenant`] for bad handles.
    pub fn submit(
        &mut self,
        now: u64,
        model: ModelId,
        tenant: usize,
        client: u64,
        input: Tensor3,
    ) -> Result<u64, ServeError> {
        self.registry.get(model)?;
        if tenant >= self.cfg.tenants() {
            return Err(ServeError::UnknownTenant {
                tenant,
                tenants: self.cfg.tenants(),
            });
        }
        let now = now.max(self.horizon);
        self.stats.submitted += 1;
        self.stats.per_tenant[tenant].0 += 1;
        obs::record(obs::Event::ServeRequests, 1);
        if self.queued >= self.cfg.queue_capacity {
            self.stats.rejected += 1;
            self.stats.per_tenant[tenant].2 += 1;
            obs::record(obs::Event::ServeRejected, 1);
            return Err(ServeError::Rejected {
                tenant,
                queue_depth: self.queued,
                capacity: self.cfg.queue_capacity,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let seq = self.client_seq.entry(client).or_insert(0);
        let request_seq = *seq;
        *seq += 1;
        self.lanes[model.0].queues[tenant].push_back(Request {
            id,
            tenant,
            client,
            seq: request_seq,
            input,
            submit: now,
        });
        self.queued += 1;
        let depth = self.queued as u64;
        self.stats.queue_highwater = self.stats.queue_highwater.max(depth);
        obs::record(obs::Event::ServeQueueHighwater, depth);
        Ok(id)
    }

    /// The earliest microtick at which anything happens: a batch in
    /// flight completes or a lane's dispatch condition fires. `None` when
    /// the server is fully drained.
    pub fn next_event(&self) -> Option<u64> {
        let completion = self.in_flight.iter().map(|&(f, _)| f).min();
        let dispatch = (0..self.lanes.len())
            .filter_map(|l| self.dispatch_time(l))
            .min();
        match (completion, dispatch) {
            (Some(c), Some(d)) => Some(c.min(d)),
            (c, d) => c.or(d),
        }
    }

    /// When lane `l` would next dispatch: once free, once the batch is
    /// full (`max_batch` pending, trigger = the batch-filling arrival) or
    /// the oldest request has waited `max_wait_ticks` — whichever bounds
    /// first. `None` while its queue is empty.
    fn dispatch_time(&self, l: usize) -> Option<u64> {
        let lane = &self.lanes[l];
        let pending = lane.pending();
        if pending == 0 {
            return None;
        }
        let mut submits: Vec<u64> = lane
            .queues
            .iter()
            .flat_map(|q| q.iter().map(|r| r.submit))
            .collect();
        submits.sort_unstable();
        let trigger = if pending >= self.cfg.max_batch {
            submits[self.cfg.max_batch - 1]
        } else {
            submits[0].saturating_add(self.cfg.max_wait_ticks)
        };
        Some(lane.busy_until.max(trigger))
    }

    /// Processes every event at the next event tick: completions first
    /// (they free lanes), then dispatches, in lane order. Returns the
    /// completions popped.
    ///
    /// # Errors
    /// Propagates execution failures from the engine underneath.
    pub fn step(&mut self) -> Result<Vec<Completion>, ServeError> {
        let Some(t) = self.next_event() else {
            return Ok(Vec::new());
        };
        self.horizon = self.horizon.max(t);
        let mut done = Vec::new();
        self.in_flight.retain_mut(|(finish, comps)| {
            if *finish <= t {
                done.append(comps);
                false
            } else {
                true
            }
        });
        for c in &done {
            self.stats.served += 1;
            self.stats.per_tenant[c.tenant].1 += 1;
            self.stats.latencies.push(c.finish - c.submit);
            self.stats.last_finish = self.stats.last_finish.max(c.finish);
            obs::record(obs::Event::ServeServed, 1);
        }
        for l in 0..self.lanes.len() {
            if self.dispatch_time(l).is_some_and(|d| d <= t) {
                self.dispatch(l, t)?;
            }
        }
        Ok(done)
    }

    /// Runs the event loop to quiescence; returns every completion.
    ///
    /// # Errors
    /// Propagates the first execution failure.
    pub fn drain(&mut self) -> Result<Vec<Completion>, ServeError> {
        let mut all = Vec::new();
        while self.next_event().is_some() {
            all.extend(self.step()?);
        }
        debug_assert_eq!(self.outstanding(), 0, "drain left requests behind");
        Ok(all)
    }

    /// Picks up to `max_batch` requests off lane `l` by smooth weighted
    /// round-robin across tenants: each pick raises every active tenant's
    /// credit by its weight, takes the highest credit (lowest tenant index
    /// on ties) and charges it the active weight sum.
    fn select_batch(&mut self, l: usize) -> Vec<Request> {
        let weights = self.cfg.tenant_weights.clone();
        let lane = &mut self.lanes[l];
        let mut batch = Vec::new();
        while batch.len() < self.cfg.max_batch {
            let active: Vec<usize> = (0..lane.queues.len())
                .filter(|&t| !lane.queues[t].is_empty())
                .collect();
            if active.is_empty() {
                break;
            }
            let total: i64 = active.iter().map(|&t| weights[t] as i64).sum();
            for &t in &active {
                lane.credits[t] += weights[t] as i64;
            }
            let pick = *active
                .iter()
                .max_by_key(|&&t| (lane.credits[t], std::cmp::Reverse(t)))
                .expect("active set is non-empty");
            lane.credits[pick] -= total;
            batch.push(lane.queues[pick].pop_front().expect("picked non-empty"));
        }
        self.queued -= batch.len();
        batch
    }

    /// Dispatches one batch on lane `l` at tick `at`: selects requests,
    /// executes them (fleet lane for large batches), prices the span via
    /// the cycle model and schedules the completions.
    fn dispatch(&mut self, l: usize, at: u64) -> Result<(), ServeError> {
        let batch = self.select_batch(l);
        debug_assert!(!batch.is_empty());
        let inputs: Vec<Tensor3> = batch.iter().map(|r| r.input.clone()).collect();
        let entry: &ModelEntry = self.registry.get(ModelId(l))?;
        let use_fleet = entry.fleet.is_some() && batch.len() >= self.cfg.fleet_batch_threshold;
        let run = match (&entry.fleet, use_fleet) {
            (Some(fleet), true) => fleet.run(&inputs)?,
            _ => entry.lane.run(&inputs)?,
        };

        // Span pricing, all integer: a per-dispatch weight-streaming
        // charge (the whole static stream crosses the multiplier array
        // once — why batching amortizes), the batch's compute makespan,
        // and a fault penalty making detection/recovery SLO-visible.
        let mults = entry.net.config().total_multipliers() as u64;
        let overhead = entry.net.weight_atoms().div_ceil(mults.max(1));
        let penalty = fault_penalty(&run.faults, mults.max(1));
        let span = overhead
            .saturating_add(run.report.makespan_cycles)
            .saturating_add(penalty)
            .max(1);
        let finish = at.saturating_add(span);

        self.stats.batches += 1;
        self.stats.batch_histogram[batch.len() - 1] += 1;
        self.stats.busy_ticks = self.stats.busy_ticks.saturating_add(span);
        self.stats.fault_penalty_ticks = self.stats.fault_penalty_ticks.saturating_add(penalty);
        self.stats.faults_injected += run.faults.injected_total();
        self.stats.faults_detected += run.faults.detected_total();
        obs::record(obs::Event::ServeBatches, 1);
        obs::record(obs::Event::ServeBatchMax, batch.len() as u64);
        obs::record(obs::Event::ServeBusyTicks, span);
        obs::record(obs::Event::ServeFaultPenaltyTicks, penalty);
        if use_fleet {
            self.stats.fleet_batches += 1;
            obs::record(obs::Event::ServeFleetBatches, 1);
        }
        for (r, out) in batch.iter().zip(&run.outputs) {
            self.stats
                .request_digests
                .push((r.client, r.seq, tensor_digest(0, out)));
        }

        let comps: Vec<Completion> = batch
            .iter()
            .map(|r| Completion {
                request: r.id,
                model: ModelId(l),
                tenant: r.tenant,
                client: r.client,
                submit: r.submit,
                finish,
            })
            .collect();
        self.lanes[l].busy_until = finish;
        self.in_flight.push((finish, comps));
        self.in_flight.sort_by_key(|&(f, _)| f);
        Ok(())
    }
}

/// Microticks charged to a batch for its fault campaign: every retry and
/// dense-layer fallback counts, plus the discarded atom multiplications
/// normalized by the array width.
fn fault_penalty(faults: &FaultStats, mults: u64) -> u64 {
    faults
        .retries
        .saturating_add(faults.layer_fallbacks)
        .saturating_add(faults.wasted_atom_mults.div_ceil(mults))
}
