//! The continuous-batching scheduler: virtual-time event loop, bounded
//! admission with brownout shedding, weighted fair dequeue, per-request
//! deadlines with dispatch-time shedding, per-model execution lanes
//! behind a fault-tripped circuit breaker.

use super::registry::{ModelEntry, ModelId, ModelRegistry};
use super::{ServeConfig, ServeError, SloClass};
use crate::engine::EngineError;
use crate::fault::{FaultConfig, FaultStats};
use crate::fleet::{tensor_digest, FleetRun};
use qnn::tensor::Tensor3;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One admitted request waiting in a lane queue.
struct Request {
    id: u64,
    tenant: usize,
    /// The tenant's SLO class, resolved at admission.
    class: SloClass,
    client: u64,
    /// Per-client admission sequence number: together with `client` it is
    /// the request's stable identity across runs whose interleaving
    /// differs (e.g. a chaos run vs its quiescent twin).
    seq: u64,
    input: Tensor3,
    submit: u64,
    /// Absolute microtick the request expires at: still queued when it
    /// passes, the scheduler sheds it at dispatch instead of running dead
    /// work. `None` never expires.
    deadline: Option<u64>,
}

/// How a request left the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Executed and completed; the output digest was recorded.
    Served,
    /// Shed at dispatch time: its deadline had already passed, so the
    /// batch left without it (`ServeError::DeadlineExceeded` as a
    /// completion-side disposition rather than a submission error).
    DeadlineExceeded {
        /// The absolute deadline that expired.
        deadline: u64,
    },
}

/// A finished request, reported back to the submitting client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The id `submit` returned.
    pub request: u64,
    /// Model the request ran on.
    pub model: ModelId,
    /// Tenant the request belonged to.
    pub tenant: usize,
    /// Opaque client tag passed at submission.
    pub client: u64,
    /// Microtick the request was admitted at.
    pub submit: u64,
    /// Microtick the batch carrying it completed at (for a shed request:
    /// the dispatch tick that shed it).
    pub finish: u64,
    /// Whether the request was served or shed.
    pub disposition: Disposition,
}

/// Circuit-breaker state of one execution lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Healthy: batches route normally, faulted batches grow the streak.
    Closed,
    /// Tripped: batches route around the fleet lane onto the single-core
    /// lane with recovery forced on, until the cooldown tick passes and
    /// the next batch half-opens (probes) the primary route.
    Open {
        /// First tick at which a probe may run.
        until: u64,
    },
}

/// One batch in flight, keyed for the completion heap: ascending finish
/// tick, dispatch order breaking ties so pops are deterministic.
struct InFlight {
    finish: u64,
    /// Dispatch ordinal (monotone per dispatch) — the deterministic
    /// tie-break for batches finishing on the same tick.
    order: u64,
    comps: Vec<Completion>,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        (self.finish, self.order) == (other.finish, other.order)
    }
}

impl Eq for InFlight {}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.finish, self.order).cmp(&(other.finish, other.order))
    }
}

/// Per-model execution lane: its queue, fairness credits, busy horizon,
/// the incrementally maintained dispatch-trigger caches, the decaying
/// span estimate and the circuit breaker.
struct Lane {
    /// One FIFO per tenant, each in admission order.
    queues: Vec<VecDeque<Request>>,
    /// Smooth weighted-round-robin credit per tenant.
    credits: Vec<i64>,
    /// Virtual tick the lane is busy until.
    busy_until: u64,
    /// Submit ticks of every pending request, ascending — maintained on
    /// admission and rebuilt after dispatch, so `next_event` probes read
    /// the k-th-smallest submit in O(1) instead of re-sorting the queue.
    submits_sorted: Vec<u64>,
    /// Earliest deadline among pending `Interactive` requests
    /// (`u64::MAX` when none) — arms the SLO-aware early dispatch.
    interactive_deadline_min: u64,
    /// Decaying integer window over recent batch spans
    /// (`est' = (3·est + span) / 4`); `0` until the first batch lands.
    span_est: u64,
    /// Consecutive completed batches that reported detected faults.
    faulted_streak: u32,
    breaker: BreakerState,
}

impl Lane {
    fn pending(&self) -> usize {
        self.submits_sorted.len()
    }

    /// Folds one admitted request into the trigger caches.
    fn note_admit(&mut self, submit: u64, class: SloClass, deadline: Option<u64>) {
        let at = self.submits_sorted.partition_point(|&s| s <= submit);
        self.submits_sorted.insert(at, submit);
        if class == SloClass::Interactive {
            if let Some(d) = deadline {
                self.interactive_deadline_min = self.interactive_deadline_min.min(d);
            }
        }
    }

    /// Rebuilds the trigger caches from the queues (after a dispatch or a
    /// shed removed arbitrary entries).
    fn rebuild_cache(&mut self) {
        self.submits_sorted = self
            .queues
            .iter()
            .flat_map(|q| q.iter().map(|r| r.submit))
            .collect();
        self.submits_sorted.sort_unstable();
        self.interactive_deadline_min = self
            .queues
            .iter()
            .flat_map(|q| q.iter())
            .filter(|r| r.class == SloClass::Interactive)
            .filter_map(|r| r.deadline)
            .min()
            .unwrap_or(u64::MAX);
    }
}

/// Integer counters a serving run accumulates; the load generator folds
/// them into the serialized [`ServeReport`](super::report::ServeReport).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests offered to admission control (admitted + rejected).
    pub submitted: u64,
    /// Requests completed.
    pub served: u64,
    /// Requests refused by admission control (queue full or brownout).
    pub rejected: u64,
    /// Requests shed at dispatch because their deadline had expired.
    pub shed: u64,
    /// The brownout subset of `rejected`: `BestEffort` admissions shed at
    /// the high-water mark.
    pub brownout_rejected: u64,
    /// Per-tenant `(submitted, served, rejected, shed)` tuples.
    pub per_tenant: Vec<(u64, u64, u64, u64)>,
    /// Batches dispatched.
    pub batches: u64,
    /// Batches routed through the multi-core fleet lane.
    pub fleet_batches: u64,
    /// Batches the SLO-aware trigger pulled in ahead of the batch-full /
    /// max-wait bound.
    pub deadline_early_dispatches: u64,
    /// Circuit-breaker trips (closed→open, and re-trips on a failed
    /// probe).
    pub breaker_trips: u64,
    /// Batches served on the degraded route while a breaker was open.
    pub breaker_open_batches: u64,
    /// Half-open probes dispatched after a breaker cooldown.
    pub breaker_half_opens: u64,
    /// Batches re-run with recovery forced on after the primary route
    /// aborted on a detected fault.
    pub breaker_reruns: u64,
    /// `histogram[k-1]` = batches that carried exactly `k` requests.
    pub batch_histogram: Vec<u64>,
    /// Deepest queue occupancy observed at any admission.
    pub queue_highwater: u64,
    /// Lane busy microticks across all dispatches.
    pub busy_ticks: u64,
    /// Microticks charged to fault detection and recovery.
    pub fault_penalty_ticks: u64,
    /// Faults injected by the chaos campaign, summed over structures.
    pub faults_injected: u64,
    /// Faults detected by the online monitors, summed over structures.
    pub faults_detected: u64,
    /// Completion latencies in microticks (sorted on demand for
    /// percentiles).
    pub latencies: Vec<u64>,
    /// Completion latencies split by SLO class (indexed by
    /// [`SloClass::index`]).
    pub latencies_by_class: [Vec<u64>; 3],
    /// `(client, seq, digest)` per completed request; folded in sorted
    /// order into the report's `output_digest`, so the witness is
    /// independent of batch composition and completion interleaving.
    pub request_digests: Vec<(u64, u64, u64)>,
    /// Latest completion tick (the drain makespan).
    pub last_finish: u64,
}

impl ServerStats {
    /// Order-insensitive fold of the per-request output digests: sorted
    /// by `(client, seq)` — a request's stable identity — then chained
    /// through splitmix64. Two runs that served the same requests with
    /// byte-identical outputs agree here even if their batch compositions
    /// differed; any corrupted output changes it.
    pub fn output_digest(&self) -> u64 {
        self.output_digest_over(|_, _| true)
    }

    /// [`ServerStats::output_digest`] restricted to the requests `keep`
    /// accepts by `(client, seq)` — the chaos-twin witness folds only the
    /// intersection of both runs' survivors, so shed/degraded runs are
    /// still provably corruption-free on everything they did serve.
    pub fn output_digest_over(&self, mut keep: impl FnMut(u64, u64) -> bool) -> u64 {
        let mut digests: Vec<(u64, u64, u64)> = self
            .request_digests
            .iter()
            .copied()
            .filter(|&(client, seq, _)| keep(client, seq))
            .collect();
        digests.sort_unstable();
        let mut h = 0x5E27Eu64;
        for (client, seq, d) in digests {
            h = crate::fault::splitmix64(h ^ client.rotate_left(40) ^ seq.rotate_left(17) ^ d);
        }
        h
    }
}

/// The long-lived in-process server: a [`ModelRegistry`], a bounded
/// queue, and a continuous-batching scheduler in virtual time (integer
/// microticks; see the [module docs](super) for the policy and the
/// determinism contract).
pub struct Server {
    registry: ModelRegistry,
    cfg: ServeConfig,
    lanes: Vec<Lane>,
    /// Batches in flight, a min-heap on `(finish, dispatch order)`: pops
    /// are deterministic and O(log n), replacing the former re-sort of a
    /// flat vector on every dispatch.
    in_flight: BinaryHeap<Reverse<InFlight>>,
    /// Monotone dispatch ordinal — the heap's tie-break key.
    dispatch_order: u64,
    /// Admitted, not-yet-dispatched requests across all lanes.
    queued: usize,
    next_id: u64,
    /// Admissions seen per client tag (assigns `Request::seq`).
    client_seq: std::collections::HashMap<u64, u64>,
    /// Latest event tick processed; submissions are clamped to it so the
    /// timeline never runs backwards.
    horizon: u64,
    stats: ServerStats,
}

impl Server {
    /// Wraps a registry under a validated serving policy.
    ///
    /// # Errors
    /// [`ServeError::Config`] when the policy is inconsistent.
    pub fn new(registry: ModelRegistry, cfg: ServeConfig) -> Result<Self, ServeError> {
        cfg.validate()?;
        let tenants = cfg.tenants();
        let lanes = (0..registry.len())
            .map(|_| Lane {
                queues: (0..tenants).map(|_| VecDeque::new()).collect(),
                credits: vec![0; tenants],
                busy_until: 0,
                submits_sorted: Vec::new(),
                interactive_deadline_min: u64::MAX,
                span_est: 0,
                faulted_streak: 0,
                breaker: BreakerState::Closed,
            })
            .collect();
        let stats = ServerStats {
            per_tenant: vec![(0, 0, 0, 0); tenants],
            batch_histogram: vec![0; cfg.max_batch],
            ..ServerStats::default()
        };
        Ok(Self {
            registry,
            cfg,
            lanes,
            in_flight: BinaryHeap::new(),
            dispatch_order: 0,
            queued: 0,
            next_id: 0,
            client_seq: std::collections::HashMap::new(),
            horizon: 0,
            stats,
        })
    }

    /// The registry the server schedules over.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The serving policy in force.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Requests admitted but not yet completed (queued + in flight).
    pub fn outstanding(&self) -> usize {
        self.queued
            + self
                .in_flight
                .iter()
                .map(|Reverse(b)| b.comps.len())
                .sum::<usize>()
    }

    /// The earliest tick a queue slot is expected to free: the next
    /// dispatch across all lanes (`now` when nothing is pending) — the
    /// `retry_after` hint carried by rejections.
    fn retry_after_hint(&self, now: u64) -> u64 {
        (0..self.lanes.len())
            .filter_map(|l| self.dispatch_time(l))
            .min()
            .unwrap_or(now)
    }

    /// Offers one request to admission control at microtick `now`, with
    /// an optional absolute expiry deadline (microticks). Returns the
    /// request id on admission.
    ///
    /// # Errors
    /// [`ServeError::Rejected`] when the bounded queue is at capacity,
    /// [`ServeError::BrownedOut`] when brownout sheds a `BestEffort`
    /// admission at the high-water mark (both counted, not enqueued;
    /// both carry a `retry_after` backoff hint),
    /// [`ServeError::UnknownModel`] / [`ServeError::UnknownTenant`] for
    /// bad handles.
    pub fn submit(
        &mut self,
        now: u64,
        model: ModelId,
        tenant: usize,
        client: u64,
        input: Tensor3,
        deadline: Option<u64>,
    ) -> Result<u64, ServeError> {
        self.registry.get(model)?;
        if tenant >= self.cfg.tenants() {
            return Err(ServeError::UnknownTenant {
                tenant,
                tenants: self.cfg.tenants(),
            });
        }
        let now = now.max(self.horizon);
        let class = self.cfg.tenant_classes[tenant];
        self.stats.submitted += 1;
        self.stats.per_tenant[tenant].0 += 1;
        obs::record(obs::Event::ServeRequests, 1);
        if class == SloClass::BestEffort && self.queued >= self.cfg.brownout_highwater() {
            self.stats.rejected += 1;
            self.stats.brownout_rejected += 1;
            self.stats.per_tenant[tenant].2 += 1;
            obs::record(obs::Event::ServeRejected, 1);
            obs::record(obs::Event::ServeBrownoutRejected, 1);
            return Err(ServeError::BrownedOut {
                tenant,
                queue_depth: self.queued,
                highwater: self.cfg.brownout_highwater(),
                retry_after: self.retry_after_hint(now),
            });
        }
        if self.queued >= self.cfg.queue_capacity {
            self.stats.rejected += 1;
            self.stats.per_tenant[tenant].2 += 1;
            obs::record(obs::Event::ServeRejected, 1);
            return Err(ServeError::Rejected {
                tenant,
                queue_depth: self.queued,
                capacity: self.cfg.queue_capacity,
                retry_after: self.retry_after_hint(now),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let seq = self.client_seq.entry(client).or_insert(0);
        let request_seq = *seq;
        *seq += 1;
        let lane = &mut self.lanes[model.0];
        lane.note_admit(now, class, deadline);
        lane.queues[tenant].push_back(Request {
            id,
            tenant,
            class,
            client,
            seq: request_seq,
            input,
            submit: now,
            deadline,
        });
        self.queued += 1;
        let depth = self.queued as u64;
        self.stats.queue_highwater = self.stats.queue_highwater.max(depth);
        obs::record(obs::Event::ServeQueueHighwater, depth);
        Ok(id)
    }

    /// The earliest microtick at which anything happens: a batch in
    /// flight completes or a lane's dispatch condition fires. `None` when
    /// the server is fully drained.
    pub fn next_event(&self) -> Option<u64> {
        let completion = self.in_flight.peek().map(|Reverse(b)| b.finish);
        let dispatch = (0..self.lanes.len())
            .filter_map(|l| self.dispatch_time(l))
            .min();
        match (completion, dispatch) {
            (Some(c), Some(d)) => Some(c.min(d)),
            (c, d) => c.or(d),
        }
    }

    /// The `(normal, slo)` trigger pair for lane `l`, read off the
    /// incrementally maintained caches in O(1): `normal` is the classic
    /// bound (batch full → the batch-filling arrival, else oldest request
    /// plus `max_wait_ticks`), while `slo` is the early tick the oldest
    /// pending interactive deadline pulls dispatch to — deadline minus
    /// the lane's span estimate, floored at the oldest arrival — and is
    /// absent until a span estimate exists. `None` while the lane is
    /// empty.
    fn triggers(&self, l: usize) -> Option<(u64, Option<u64>)> {
        let lane = &self.lanes[l];
        let pending = lane.pending();
        if pending == 0 {
            return None;
        }
        let normal = if pending >= self.cfg.max_batch {
            lane.submits_sorted[self.cfg.max_batch - 1]
        } else {
            lane.submits_sorted[0].saturating_add(self.cfg.max_wait_ticks)
        };
        let slo = (lane.interactive_deadline_min != u64::MAX && lane.span_est > 0).then(|| {
            lane.interactive_deadline_min
                .saturating_sub(lane.span_est)
                .max(lane.submits_sorted[0])
        });
        Some((normal, slo))
    }

    /// When lane `l` would next dispatch: once free, once the earlier of
    /// the normal and SLO-aware triggers fires. `None` while its queue is
    /// empty.
    fn dispatch_time(&self, l: usize) -> Option<u64> {
        let (normal, slo) = self.triggers(l)?;
        let trigger = slo.map_or(normal, |s| normal.min(s));
        Some(self.lanes[l].busy_until.max(trigger))
    }

    /// Processes every event at the next event tick: completions first
    /// (they free lanes), then dispatches, in lane order. Returns the
    /// completions popped, including shed notices
    /// ([`Disposition::DeadlineExceeded`]).
    ///
    /// # Errors
    /// Propagates execution failures from the engine underneath.
    pub fn step(&mut self) -> Result<Vec<Completion>, ServeError> {
        let Some(t) = self.next_event() else {
            return Ok(Vec::new());
        };
        self.horizon = self.horizon.max(t);
        let mut done = Vec::new();
        while self
            .in_flight
            .peek()
            .is_some_and(|Reverse(b)| b.finish <= t)
        {
            let Reverse(batch) = self.in_flight.pop().expect("peeked non-empty");
            done.extend(batch.comps);
        }
        for c in &done {
            self.stats.served += 1;
            self.stats.per_tenant[c.tenant].1 += 1;
            let latency = c.finish.saturating_sub(c.submit);
            self.stats.latencies.push(latency);
            self.stats.latencies_by_class[self.cfg.tenant_classes[c.tenant].index()].push(latency);
            self.stats.last_finish = self.stats.last_finish.max(c.finish);
            obs::record(obs::Event::ServeServed, 1);
        }
        for l in 0..self.lanes.len() {
            if self.dispatch_time(l).is_some_and(|d| d <= t) {
                done.extend(self.dispatch(l, t)?);
            }
        }
        Ok(done)
    }

    /// Runs the event loop to quiescence; returns every completion
    /// (served and shed).
    ///
    /// # Errors
    /// Propagates the first execution failure.
    pub fn drain(&mut self) -> Result<Vec<Completion>, ServeError> {
        let mut all = Vec::new();
        while self.next_event().is_some() {
            all.extend(self.step()?);
        }
        debug_assert_eq!(self.outstanding(), 0, "drain left requests behind");
        debug_assert_eq!(
            self.stats.submitted,
            self.stats.served + self.stats.rejected + self.stats.shed,
            "conservation violated at drain"
        );
        Ok(all)
    }

    /// Removes every expired request from lane `l` at dispatch tick `at`,
    /// returning their shed notices (counted, never executed).
    fn shed_expired(&mut self, l: usize, at: u64) -> Vec<Completion> {
        let lane = &mut self.lanes[l];
        let mut notices = Vec::new();
        for queue in &mut lane.queues {
            let mut kept = VecDeque::with_capacity(queue.len());
            for r in queue.drain(..) {
                match r.deadline {
                    Some(d) if d <= at => {
                        self.stats.shed += 1;
                        self.stats.per_tenant[r.tenant].3 += 1;
                        self.queued -= 1;
                        obs::record(obs::Event::ServeShed, 1);
                        notices.push(Completion {
                            request: r.id,
                            model: ModelId(l),
                            tenant: r.tenant,
                            client: r.client,
                            submit: r.submit,
                            finish: at,
                            disposition: Disposition::DeadlineExceeded { deadline: d },
                        });
                    }
                    _ => kept.push_back(r),
                }
            }
            *queue = kept;
        }
        if !notices.is_empty() {
            lane.rebuild_cache();
        }
        notices
    }

    /// Picks up to `max_batch` requests off lane `l` by smooth weighted
    /// round-robin across tenants: each pick raises every active tenant's
    /// credit by its weight, takes the highest credit (lowest tenant index
    /// on ties) and charges it the active weight sum.
    fn select_batch(&mut self, l: usize) -> Vec<Request> {
        // Split borrows: the weight table lives on the config, the queues
        // on the lane — no per-dispatch clone of the weights.
        let Self {
            cfg, lanes, queued, ..
        } = self;
        let weights = &cfg.tenant_weights;
        let lane = &mut lanes[l];
        let mut batch = Vec::new();
        while batch.len() < cfg.max_batch {
            let active: Vec<usize> = (0..lane.queues.len())
                .filter(|&t| !lane.queues[t].is_empty())
                .collect();
            if active.is_empty() {
                break;
            }
            let total: i64 = active.iter().map(|&t| weights[t] as i64).sum();
            for &t in &active {
                lane.credits[t] += weights[t] as i64;
            }
            let pick = *active
                .iter()
                .max_by_key(|&&t| (lane.credits[t], std::cmp::Reverse(t)))
                .expect("active set is non-empty");
            lane.credits[pick] -= total;
            batch.push(lane.queues[pick].pop_front().expect("picked non-empty"));
        }
        *queued -= batch.len();
        batch
    }

    /// Dispatches one batch on lane `l` at tick `at`: sheds expired
    /// requests, selects the rest, routes them (fleet lane for large
    /// batches unless the circuit breaker is open), prices the span via
    /// the cycle model and schedules the completions. Returns the shed
    /// notices.
    fn dispatch(&mut self, l: usize, at: u64) -> Result<Vec<Completion>, ServeError> {
        let notices = self.shed_expired(l, at);
        if self.lanes[l].pending() == 0 {
            return Ok(notices);
        }
        // Was the SLO-aware trigger the operative bound? (Accounting
        // only; computed on the post-shed queue.)
        let early = matches!(self.triggers(l), Some((normal, Some(slo))) if slo < normal);
        let batch = self.select_batch(l);
        debug_assert!(!batch.is_empty());
        let inputs: Vec<&Tensor3> = batch.iter().map(|r| &r.input).collect();
        let entry: &ModelEntry = self.registry.get(ModelId(l))?;
        let qualifies_fleet =
            entry.fleet.is_some() && batch.len() >= self.cfg.fleet_batch_threshold;
        let breaker_enabled = self.cfg.breaker_threshold > 0;
        let campaign = entry.net.config().faults;

        // The degradation ladder: while the breaker is open, batches skip
        // the fleet lane and re-run on the single-core lane with recovery
        // forced on; once the cooldown passes, the next batch half-opens
        // (probes) the primary route. All decisions are pure functions of
        // counters and virtual ticks — no wall clock, no randomness.
        let (route_fleet, degraded, probing) = match self.lanes[l].breaker {
            BreakerState::Open { until } if at >= until => (qualifies_fleet, false, true),
            BreakerState::Open { .. } => (false, true, false),
            BreakerState::Closed => (qualifies_fleet, false, false),
        };
        let effective = if degraded {
            campaign.map(FaultConfig::forced_recovery)
        } else {
            campaign
        };
        let primary: Result<FleetRun, EngineError> = match (&entry.fleet, route_fleet) {
            (Some(fleet), true) => fleet.run_with(&inputs, effective),
            _ => entry.lane.run_with(&inputs, effective),
        };
        // Per-batch rung of the ladder: a detected fault that escaped
        // containment aborts the primary attempt — re-run on the
        // single-core lane with recovery forced instead of failing the
        // whole serve loop.
        let (run, rerun) = match primary {
            Ok(run) => (run, false),
            Err(EngineError::Fault(_)) if breaker_enabled => {
                let run = entry
                    .lane
                    .run_with(&inputs, campaign.map(FaultConfig::forced_recovery))?;
                (run, true)
            }
            Err(e) => return Err(e.into()),
        };

        // Span pricing, all integer: a per-dispatch weight-streaming
        // charge (the whole static stream crosses the multiplier array
        // once — why batching amortizes), the batch's compute makespan,
        // and a fault penalty making detection/recovery SLO-visible.
        let mults = entry.net.config().total_multipliers() as u64;
        let overhead = entry.net.weight_atoms().div_ceil(mults.max(1));
        let penalty = fault_penalty(&run.faults, mults.max(1));
        let span = overhead
            .saturating_add(run.report.makespan_cycles)
            .saturating_add(penalty)
            .max(1);
        let finish = at.saturating_add(span);

        self.stats.batches += 1;
        self.stats.batch_histogram[batch.len() - 1] += 1;
        self.stats.busy_ticks = self.stats.busy_ticks.saturating_add(span);
        self.stats.fault_penalty_ticks = self.stats.fault_penalty_ticks.saturating_add(penalty);
        self.stats.faults_injected += run.faults.injected_total();
        self.stats.faults_detected += run.faults.detected_total();
        obs::record(obs::Event::ServeBatches, 1);
        obs::record(obs::Event::ServeBatchMax, batch.len() as u64);
        obs::record(obs::Event::ServeBusyTicks, span);
        obs::record(obs::Event::ServeFaultPenaltyTicks, penalty);
        if route_fleet {
            self.stats.fleet_batches += 1;
            obs::record(obs::Event::ServeFleetBatches, 1);
        }
        if early {
            self.stats.deadline_early_dispatches += 1;
            obs::record(obs::Event::ServeDeadlineEarlyDispatches, 1);
        }
        if rerun {
            self.stats.breaker_reruns += 1;
            obs::record(obs::Event::ServeBreakerReruns, 1);
        }

        // Breaker bookkeeping, driven purely by the batch's fault
        // counters: an aborted-and-rerun batch counts as faulted.
        let faulted = rerun || run.faults.detected_total() > 0;
        if breaker_enabled {
            match self.lanes[l].breaker {
                BreakerState::Closed => {
                    if faulted {
                        self.lanes[l].faulted_streak += 1;
                        if self.lanes[l].faulted_streak >= self.cfg.breaker_threshold {
                            self.lanes[l].breaker = BreakerState::Open {
                                until: finish.saturating_add(self.cfg.breaker_cooldown_ticks),
                            };
                            self.lanes[l].faulted_streak = 0;
                            self.stats.breaker_trips += 1;
                            obs::record(obs::Event::ServeBreakerTrips, 1);
                        }
                    } else {
                        self.lanes[l].faulted_streak = 0;
                    }
                }
                BreakerState::Open { .. } if probing => {
                    self.stats.breaker_half_opens += 1;
                    obs::record(obs::Event::ServeBreakerHalfOpens, 1);
                    if faulted {
                        self.lanes[l].breaker = BreakerState::Open {
                            until: finish.saturating_add(self.cfg.breaker_cooldown_ticks),
                        };
                        self.stats.breaker_trips += 1;
                        obs::record(obs::Event::ServeBreakerTrips, 1);
                    } else {
                        self.lanes[l].breaker = BreakerState::Closed;
                    }
                }
                BreakerState::Open { .. } => {
                    self.stats.breaker_open_batches += 1;
                    obs::record(obs::Event::ServeBreakerOpenBatches, 1);
                }
            }
        }

        for (r, out) in batch.iter().zip(&run.outputs) {
            self.stats
                .request_digests
                .push((r.client, r.seq, tensor_digest(0, out)));
        }

        let comps: Vec<Completion> = batch
            .iter()
            .map(|r| Completion {
                request: r.id,
                model: ModelId(l),
                tenant: r.tenant,
                client: r.client,
                submit: r.submit,
                finish,
                disposition: Disposition::Served,
            })
            .collect();
        self.lanes[l].busy_until = finish;
        self.lanes[l].span_est = if self.lanes[l].span_est == 0 {
            span
        } else {
            (3 * self.lanes[l].span_est + span) / 4
        };
        self.in_flight.push(Reverse(InFlight {
            finish,
            order: self.dispatch_order,
            comps,
        }));
        self.dispatch_order += 1;
        self.lanes[l].rebuild_cache();
        Ok(notices)
    }
}

/// Microticks charged to a batch for its fault campaign: every retry and
/// dense-layer fallback counts, plus the discarded atom multiplications
/// normalized by the array width.
fn fault_penalty(faults: &FaultStats, mults: u64) -> u64 {
    faults
        .retries
        .saturating_add(faults.layer_fallbacks)
        .saturating_add(faults.wasted_atom_mults.div_ceil(mults))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(finish: u64, order: u64, tag: u64) -> Reverse<InFlight> {
        Reverse(InFlight {
            finish,
            order,
            comps: vec![Completion {
                request: tag,
                model: ModelId(0),
                tenant: 0,
                client: tag,
                submit: 0,
                finish,
                disposition: Disposition::Served,
            }],
        })
    }

    /// The completion heap pops ascending `(finish, dispatch order)`:
    /// batches finishing on the same tick retire in dispatch order, so a
    /// heap-backed `in_flight` reproduces the former sorted-vector
    /// retirement byte-for-byte.
    #[test]
    fn in_flight_pop_order_is_finish_then_dispatch_order() {
        let mut heap = BinaryHeap::new();
        heap.push(batch(50, 2, 0));
        heap.push(batch(10, 1, 1));
        heap.push(batch(10, 0, 2));
        heap.push(batch(30, 3, 3));
        let popped: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|Reverse(b)| (b.finish, b.order))
            .collect();
        assert_eq!(popped, vec![(10, 0), (10, 1), (30, 3), (50, 2)]);
    }
}
