//! Seeded closed-loop load generator.
//!
//! Every arrival time, model pick and input tensor is a pure splitmix64
//! hash of `(seed, client, attempt)` — the same site-hash discipline as
//! [`crate::fault`] — so a run is a function of its configuration alone:
//! no shared-state RNG, no wall clock, byte-identical at any thread
//! count. Clients are closed-loop: each submits, waits for its completion
//! (or rejection), thinks for a hashed interval, and submits again until
//! its request budget is spent. Rejected attempts consume budget and are
//! counted, which is what makes the post-drain conservation invariant
//! `submitted == served + rejected` exact.

use super::registry::ModelId;
use super::report::ServeReport;
use super::server::Server;
use super::ServeError;
use crate::fault::splitmix64;
use qnn::quant::BitWidth;
use qnn::workload::{ActivationProfile, WorkloadGen};

/// Closed-loop load shape: how many clients, how fast, over which models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadGenConfig {
    /// Seed every arrival/routing/input hash derives from.
    pub seed: u64,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client offers before retiring.
    pub requests_per_client: usize,
    /// Mean per-client arrival rate in requests per million microticks
    /// (think times are uniform on `[1, 2·mean]`).
    pub lambda_per_mtick: u64,
    /// Model routing mix: each request picks a model with probability
    /// proportional to its weight.
    pub mix: Vec<(ModelId, u64)>,
}

impl LoadGenConfig {
    /// Mean think time in microticks implied by the arrival rate.
    pub fn mean_think_ticks(&self) -> u64 {
        1_000_000 / self.lambda_per_mtick.max(1)
    }
}

/// One client's closed-loop state.
struct Client {
    next_submit: Option<u64>,
    attempts_left: usize,
    attempt: u64,
}

/// Site hash for one `(client, attempt)` decision; `salt` separates the
/// think-time, routing and input streams.
fn site(seed: u64, client: usize, attempt: u64, salt: u64) -> u64 {
    splitmix64(splitmix64(seed ^ ((client as u64) << 1) ^ salt) ^ attempt)
}

/// Uniform think time on `[1, 2·mean]` microticks.
fn think(cfg: &LoadGenConfig, client: usize, attempt: u64) -> u64 {
    1 + site(cfg.seed, client, attempt, 0x0074_1713) % (2 * cfg.mean_think_ticks().max(1))
}

/// Weight-proportional model pick for one attempt.
fn pick_model(cfg: &LoadGenConfig, client: usize, attempt: u64) -> ModelId {
    let total: u64 = cfg.mix.iter().map(|&(_, w)| w).sum();
    let mut roll = site(cfg.seed, client, attempt, 0x0040_4D17) % total.max(1);
    for &(id, w) in &cfg.mix {
        if roll < w {
            return id;
        }
        roll -= w;
    }
    cfg.mix.last().expect("mix is non-empty").0
}

/// Drives the server with the configured closed loop until every client
/// retires and the server drains, then assembles the integer report.
///
/// Tenancy: client `c` belongs to tenant `c % tenants`.
///
/// # Errors
/// Propagates engine/execution failures; admission rejections are normal
/// flow (counted, never an error here).
///
/// # Panics
/// Panics if `cfg.mix` is empty — the caller picks the mix from its own
/// registry, so an empty mix is a programming error, not input.
pub fn run_load(server: &mut Server, cfg: &LoadGenConfig) -> Result<ServeReport, ServeError> {
    assert!(!cfg.mix.is_empty(), "load mix must name at least one model");
    let tenants = server.config().tenants();
    let mut clients: Vec<Client> = (0..cfg.clients)
        .map(|c| Client {
            next_submit: (cfg.requests_per_client > 0).then(|| think(cfg, c, 0)),
            attempts_left: cfg.requests_per_client,
            attempt: 0,
        })
        .collect();

    loop {
        let next_submit = clients
            .iter()
            .enumerate()
            .filter_map(|(c, st)| st.next_submit.map(|t| (t, c)))
            .min();
        let next_server = server.next_event();
        match (next_submit, next_server) {
            (None, None) => break,
            // Server events run first on ties: completions free lanes and
            // wake clients before new arrivals are considered.
            (submit, Some(ts)) if submit.is_none_or(|(t, _)| ts <= t) => {
                for done in server.step()? {
                    let c = done.client as usize;
                    let st = &mut clients[c];
                    if st.attempts_left > 0 {
                        st.next_submit = Some(done.finish + think(cfg, c, st.attempt));
                    }
                }
            }
            (Some((t, c)), _) => {
                let st = &mut clients[c];
                st.attempts_left -= 1;
                let attempt = st.attempt;
                st.attempt += 1;
                st.next_submit = None;
                let model = pick_model(cfg, c, attempt);
                let (ic, ih, iw) = server.registry().get(model)?.net.input();
                let input = WorkloadGen::new(site(cfg.seed, c, attempt, 0x0001_4907))
                    .activations(ic, ih, iw, &ActivationProfile::new(BitWidth::W8))
                    .map_err(|e| ServeError::Engine(crate::engine::EngineError::from(e)))?;
                match server.submit(t, model, c % tenants.max(1), c as u64, input) {
                    Ok(_) => {} // woken by the completion
                    Err(ServeError::Rejected { .. }) => {
                        let st = &mut clients[c];
                        if st.attempts_left > 0 {
                            st.next_submit = Some(t + think(cfg, c, st.attempt));
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
            (None, Some(_)) => unreachable!("covered by the server-event arm"),
        }
    }

    debug_assert_eq!(server.outstanding(), 0);
    Ok(ServeReport::from_stats(
        server.stats(),
        cfg.seed,
        cfg.clients as u64,
        tenants as u64,
        server.registry().names(),
    ))
}
