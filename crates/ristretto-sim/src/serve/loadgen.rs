//! Seeded closed-loop load generator.
//!
//! Every arrival time, model pick, input tensor and retry-backoff jitter
//! is a pure splitmix64 hash of `(seed, client, attempt)` — the same
//! site-hash discipline as [`crate::fault`] — so a run is a function of
//! its configuration alone: no shared-state RNG, no wall clock,
//! byte-identical at any thread count. Clients are closed-loop: each
//! submits, waits for its completion (or rejection), thinks for a hashed
//! interval, and submits again until its request budget is spent.
//!
//! Rejected offers may be retried with deterministic exponential backoff
//! (`base << (k−1)` plus hashed jitter, floored at the server's
//! `retry_after` hint) up to a per-request retry budget; a retry reuses
//! the same `(client, attempt)` hash sites, so it re-offers the *same*
//! model and input. Every offer — fresh or retried — counts toward the
//! post-drain conservation invariant
//! `submitted == served + rejected + shed`.

use super::registry::ModelId;
use super::report::ServeReport;
use super::server::Server;
use super::ServeError;
use crate::fault::splitmix64;
use qnn::quant::BitWidth;
use qnn::workload::{ActivationProfile, WorkloadGen};

/// Closed-loop load shape: how many clients, how fast, over which models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadGenConfig {
    /// Seed every arrival/routing/input hash derives from.
    pub seed: u64,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client offers before retiring.
    pub requests_per_client: usize,
    /// Mean per-client arrival rate in requests per million microticks
    /// (think times are uniform on `[1, 2·mean]`).
    pub lambda_per_mtick: u64,
    /// Model routing mix: each request picks a model with probability
    /// proportional to its weight.
    pub mix: Vec<(ModelId, u64)>,
    /// Relative deadline attached to every request (absolute deadline =
    /// offer tick + this); `None` submits without deadlines.
    pub deadline_ticks: Option<u64>,
    /// Retries a client may spend per request after rejections; `0`
    /// abandons on the first rejection (the pre-backoff behaviour).
    pub retry_budget: u32,
    /// Backoff base in microticks: retry `k` waits
    /// `base << (k−1)` plus hashed jitter in `[0, base)`.
    pub retry_base_ticks: u64,
}

impl LoadGenConfig {
    /// Mean think time in microticks implied by the arrival rate.
    pub fn mean_think_ticks(&self) -> u64 {
        1_000_000 / self.lambda_per_mtick.max(1)
    }
}

/// One client's closed-loop state.
struct Client {
    next_submit: Option<u64>,
    /// Fresh requests not yet offered.
    requests_left: usize,
    /// Index of the request being offered at `next_submit` (stable across
    /// its retries, so model/input hash sites replay identically).
    attempt: u64,
    /// `0` = fresh offer, `k` = k-th retry of `attempt`.
    retry_idx: u32,
    /// Retries remaining for the current request.
    retries_left: u32,
}

/// Site hash for one `(client, attempt)` decision; `salt` separates the
/// think-time, routing, input and retry-jitter streams.
fn site(seed: u64, client: usize, attempt: u64, salt: u64) -> u64 {
    splitmix64(splitmix64(seed ^ ((client as u64) << 1) ^ salt) ^ attempt)
}

/// Uniform think time on `[1, 2·mean]` microticks.
fn think(cfg: &LoadGenConfig, client: usize, attempt: u64) -> u64 {
    1 + site(cfg.seed, client, attempt, 0x0074_1713) % (2 * cfg.mean_think_ticks().max(1))
}

/// Weight-proportional model pick for one attempt.
fn pick_model(cfg: &LoadGenConfig, client: usize, attempt: u64) -> ModelId {
    let total: u64 = cfg.mix.iter().map(|&(_, w)| w).sum();
    let mut roll = site(cfg.seed, client, attempt, 0x0040_4D17) % total.max(1);
    for &(id, w) in &cfg.mix {
        if roll < w {
            return id;
        }
        roll -= w;
    }
    cfg.mix.last().expect("mix is non-empty").0
}

/// Deterministic exponential backoff for retry `k` (1-based) of one
/// request at tick `now`: `base << (k−1)` (shift capped at 16) plus
/// hashed jitter in `[0, base)`, floored at the server's `retry_after`
/// hint, never less than one tick.
fn backoff(cfg: &LoadGenConfig, client: usize, attempt: u64, k: u32, now: u64, after: u64) -> u64 {
    let base = cfg.retry_base_ticks.max(1);
    let shift = (k.saturating_sub(1)).min(16);
    let jitter = site(cfg.seed, client, (attempt << 8) | k as u64, 0x0052_E717) % base;
    (base << shift)
        .saturating_add(jitter)
        .max(after.saturating_sub(now))
        .max(1)
}

/// Drives the server with the configured closed loop until every client
/// retires and the server drains, then assembles the integer report.
///
/// Tenancy: client `c` belongs to tenant `c % tenants`.
///
/// # Errors
/// Propagates engine/execution failures; admission rejections and
/// deadline sheds are normal flow (counted, never an error here).
///
/// # Panics
/// Panics if `cfg.mix` is empty — the caller picks the mix from its own
/// registry, so an empty mix is a programming error, not input.
pub fn run_load(server: &mut Server, cfg: &LoadGenConfig) -> Result<ServeReport, ServeError> {
    assert!(!cfg.mix.is_empty(), "load mix must name at least one model");
    let tenants = server.config().tenants();
    let classes = server.config().tenant_classes.clone();
    let mut retries: u64 = 0;
    let mut retry_exhausted: u64 = 0;
    let mut clients: Vec<Client> = (0..cfg.clients)
        .map(|c| Client {
            next_submit: (cfg.requests_per_client > 0).then(|| think(cfg, c, 0)),
            requests_left: cfg.requests_per_client,
            attempt: 0,
            retry_idx: 0,
            retries_left: cfg.retry_budget,
        })
        .collect();

    loop {
        let next_submit = clients
            .iter()
            .enumerate()
            .filter_map(|(c, st)| st.next_submit.map(|t| (t, c)))
            .min();
        let next_server = server.next_event();
        match (next_submit, next_server) {
            (None, None) => break,
            // Server events run first on ties: completions free lanes and
            // wake clients before new arrivals are considered.
            (submit, Some(ts)) if submit.is_none_or(|(t, _)| ts <= t) => {
                // Served and shed completions pace the closed loop the
                // same way: either outcome retires the request and starts
                // the client's next think interval.
                for done in server.step()? {
                    let c = done.client as usize;
                    let st = &mut clients[c];
                    st.attempt += 1;
                    st.retry_idx = 0;
                    st.retries_left = cfg.retry_budget;
                    if st.requests_left > 0 {
                        st.next_submit = Some(done.finish + think(cfg, c, st.attempt));
                    }
                }
            }
            (Some((t, c)), _) => {
                let st = &mut clients[c];
                if st.retry_idx == 0 {
                    st.requests_left -= 1;
                }
                let attempt = st.attempt;
                st.next_submit = None;
                let model = pick_model(cfg, c, attempt);
                let (ic, ih, iw) = server.registry().get(model)?.net.input();
                let input = WorkloadGen::new(site(cfg.seed, c, attempt, 0x0001_4907))
                    .activations(ic, ih, iw, &ActivationProfile::new(BitWidth::W8))
                    .map_err(|e| ServeError::Engine(crate::engine::EngineError::from(e)))?;
                let deadline = cfg.deadline_ticks.map(|d| t.saturating_add(d));
                match server.submit(t, model, c % tenants.max(1), c as u64, input, deadline) {
                    Ok(_) => {} // woken by the completion (served or shed)
                    Err(
                        ServeError::Rejected { retry_after, .. }
                        | ServeError::BrownedOut { retry_after, .. },
                    ) => {
                        let st = &mut clients[c];
                        if st.retries_left > 0 {
                            st.retries_left -= 1;
                            st.retry_idx += 1;
                            retries += 1;
                            obs::record(obs::Event::ServeRetries, 1);
                            let delay = backoff(cfg, c, attempt, st.retry_idx, t, retry_after);
                            st.next_submit = Some(t + delay);
                        } else {
                            if cfg.retry_budget > 0 {
                                retry_exhausted += 1;
                            }
                            st.attempt += 1;
                            st.retry_idx = 0;
                            st.retries_left = cfg.retry_budget;
                            if st.requests_left > 0 {
                                st.next_submit = Some(t + think(cfg, c, st.attempt));
                            }
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
            (None, Some(_)) => unreachable!("covered by the server-event arm"),
        }
    }

    debug_assert_eq!(server.outstanding(), 0);
    Ok(ServeReport::from_stats(
        server.stats(),
        cfg.seed,
        cfg.clients as u64,
        tenants as u64,
        server.registry().names(),
        &classes,
        retries,
        retry_exhausted,
    ))
}
