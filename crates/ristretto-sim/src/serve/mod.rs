//! Multi-tenant inference serving over compiled networks.
//!
//! The Liguori MAC-less processor (arXiv 2012.06018) frames deployment as
//! a long-lived accelerator fed by a request stream over compressed,
//! resident weights; Gysel's Ristretto thesis (arXiv 1605.06402) makes
//! per-tenant precision configs first-class. This module is that
//! deployment shape for the simulator: a long-lived in-process server
//! holding one [`Arc<CompiledNetwork>`](crate::engine::CompiledNetwork)
//! per `(network, config)` pair in a content-addressed
//! [registry](registry::ModelRegistry) (backed by the on-disk
//! [`ModelCache`](crate::modelcache::ModelCache) when one is attached),
//! fed through an in-process bounded queue — offline-friendly, no sockets.
//!
//! The [`Server`] runs a **continuous-batching**
//! scheduler: queued requests coalesce per model up to
//! [`ServeConfig::max_batch`], an idle lane waits at most
//! [`ServeConfig::max_wait_ticks`] for a batch to fill, and a lane that
//! frees with work pending redispatches immediately. Admission control is
//! a bounded global queue surfaced as the typed
//! [`ServeError::Rejected`]; dequeue order within a batch is smooth
//! weighted round-robin across tenants ([`ServeConfig::tenant_weights`]).
//! Batches of at least [`ServeConfig::fleet_batch_threshold`] requests
//! route through a [`ShardStrategy::Batch`](crate::fleet::ShardStrategy)
//! fleet of [`ServeConfig::fleet_cores`] cores; smaller batches run on the
//! model's single-core lane. Either way the executor is
//! [`Fleet::run`](crate::fleet::Fleet::run), so outputs are byte-identical to plain
//! [`Session`](crate::engine::Session) inference and fault campaigns
//! (chaos under load) recover byte-exactly.
//!
//! **Determinism contract**: the scheduler runs in virtual time — integer
//! microticks derived from the Eq 5 cycle model, never wall clock — on a
//! single timeline; thread-level parallelism stays confined inside the
//! engine kernels, which are byte-deterministic at any thread count. A
//! seeded [closed-loop load generator](loadgen) (pure splitmix64 arrival
//! and routing hashes, like [`crate::fault`]) therefore produces a
//! [`ServeReport`] that is byte-identical at any
//! `--threads` count.

pub mod loadgen;
pub mod registry;
pub mod report;
pub mod server;

use crate::config::ConfigError;
use crate::engine::EngineError;
use std::fmt;

/// Serving-layer parameters: batching, admission and fairness policy plus
/// the large-batch fleet lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Most requests one dispatch may coalesce.
    pub max_batch: usize,
    /// Longest an idle lane lets the oldest queued request wait (in
    /// microticks) for a batch to fill before dispatching what it has.
    pub max_wait_ticks: u64,
    /// Bound on queued (admitted, not yet dispatched) requests across all
    /// models; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Fair-share weight per tenant; tenant ids index this table.
    pub tenant_weights: Vec<u64>,
    /// Cores of the batch-sharded fleet lane; `1` disables fleet routing.
    pub fleet_cores: usize,
    /// Smallest batch routed through the multi-core fleet lane (only
    /// meaningful when `fleet_cores > 1`).
    pub fleet_batch_threshold: usize,
}

impl ServeConfig {
    /// A small default: batches of 8, 10k-tick patience, 64-deep queue,
    /// two equal tenants, 4-core fleet lane for batches of 4+.
    pub fn paper_default() -> Self {
        Self {
            max_batch: 8,
            max_wait_ticks: 10_000,
            queue_capacity: 64,
            tenant_weights: vec![1, 1],
            fleet_cores: 4,
            fleet_batch_threshold: 4,
        }
    }

    /// Number of tenants the config schedules.
    pub fn tenants(&self) -> usize {
        self.tenant_weights.len()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Never panics; returns a typed [`ConfigError`] on inconsistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_batch == 0 {
            return Err(ConfigError::ZeroMaxBatch);
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.tenant_weights.is_empty() {
            return Err(ConfigError::NoTenants);
        }
        if let Some(t) = self.tenant_weights.iter().position(|&w| w == 0) {
            return Err(ConfigError::ZeroTenantWeight(t));
        }
        if self.fleet_cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        Ok(())
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Typed failures of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The serving or model configuration is inconsistent.
    Config(ConfigError),
    /// Admission control refused the request: the bounded queue is full.
    Rejected {
        /// Tenant whose request was refused.
        tenant: usize,
        /// Queue occupancy at the refusal.
        queue_depth: usize,
        /// The configured bound it hit.
        capacity: usize,
    },
    /// A request named a tenant outside the configured weight table.
    UnknownTenant {
        /// The out-of-range tenant id.
        tenant: usize,
        /// Number of configured tenants.
        tenants: usize,
    },
    /// A request named a model id the registry does not hold.
    UnknownModel(usize),
    /// Compilation or execution failed underneath the server.
    Engine(EngineError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(e) => write!(f, "serve config: {e}"),
            ServeError::Rejected {
                tenant,
                queue_depth,
                capacity,
            } => write!(
                f,
                "request rejected for tenant {tenant}: queue at {queue_depth}/{capacity}"
            ),
            ServeError::UnknownTenant { tenant, tenants } => {
                write!(f, "tenant {tenant} outside the {tenants}-tenant table")
            }
            ServeError::UnknownModel(id) => write!(f, "model id {id} not registered"),
            ServeError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Config(e) => Some(e),
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Config(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

pub use loadgen::{run_load, LoadGenConfig};
pub use registry::{ModelId, ModelRegistry};
pub use report::{ServeReport, TenantStats};
pub use server::{Completion, Server};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_config_validates() {
        assert!(ServeConfig::paper_default().validate().is_ok());
        let mut c = ServeConfig::paper_default();
        c.max_batch = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroMaxBatch));
        let mut c = ServeConfig::paper_default();
        c.queue_capacity = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroQueueCapacity));
        let mut c = ServeConfig::paper_default();
        c.tenant_weights.clear();
        assert_eq!(c.validate(), Err(ConfigError::NoTenants));
        let mut c = ServeConfig::paper_default();
        c.tenant_weights = vec![2, 0];
        assert_eq!(c.validate(), Err(ConfigError::ZeroTenantWeight(1)));
        let mut c = ServeConfig::paper_default();
        c.fleet_cores = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroCores));
    }

    #[test]
    fn rejected_error_names_the_numbers() {
        let e = ServeError::Rejected {
            tenant: 3,
            queue_depth: 64,
            capacity: 64,
        };
        let s = e.to_string();
        assert!(s.contains("tenant 3") && s.contains("64/64"), "{s}");
    }
}
