//! Multi-tenant inference serving over compiled networks.
//!
//! The Liguori MAC-less processor (arXiv 2012.06018) frames deployment as
//! a long-lived accelerator fed by a request stream over compressed,
//! resident weights; Gysel's Ristretto thesis (arXiv 1605.06402) makes
//! per-tenant precision configs first-class. This module is that
//! deployment shape for the simulator: a long-lived in-process server
//! holding one [`Arc<CompiledNetwork>`](crate::engine::CompiledNetwork)
//! per `(network, config)` pair in a content-addressed
//! [registry](registry::ModelRegistry) (backed by the on-disk
//! [`ModelCache`](crate::modelcache::ModelCache) when one is attached),
//! fed through an in-process bounded queue — offline-friendly, no sockets.
//!
//! The [`Server`] runs a **continuous-batching**
//! scheduler: queued requests coalesce per model up to
//! [`ServeConfig::max_batch`], an idle lane waits at most
//! [`ServeConfig::max_wait_ticks`] for a batch to fill, and a lane that
//! frees with work pending redispatches immediately. Admission control is
//! a bounded global queue surfaced as the typed
//! [`ServeError::Rejected`]; dequeue order within a batch is smooth
//! weighted round-robin across tenants ([`ServeConfig::tenant_weights`]).
//! Batches of at least [`ServeConfig::fleet_batch_threshold`] requests
//! route through a [`ShardStrategy::Batch`](crate::fleet::ShardStrategy)
//! fleet of [`ServeConfig::fleet_cores`] cores; smaller batches run on the
//! model's single-core lane. Either way the executor is
//! [`Fleet::run`](crate::fleet::Fleet::run), so outputs are byte-identical to plain
//! [`Session`](crate::engine::Session) inference and fault campaigns
//! (chaos under load) recover byte-exactly.
//!
//! **Determinism contract**: the scheduler runs in virtual time — integer
//! microticks derived from the Eq 5 cycle model, never wall clock — on a
//! single timeline; thread-level parallelism stays confined inside the
//! engine kernels, which are byte-deterministic at any thread count. A
//! seeded [closed-loop load generator](loadgen) (pure splitmix64 arrival
//! and routing hashes, like [`crate::fault`]) therefore produces a
//! [`ServeReport`] that is byte-identical at any
//! `--threads` count.

pub mod loadgen;
pub mod registry;
pub mod report;
pub mod server;

use crate::config::ConfigError;
use crate::engine::EngineError;
use crate::fault::CoreDeathConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-tenant service-level objective class, ordered by urgency.
///
/// The class drives two scheduler behaviors: `Interactive` requests with
/// deadlines arm the SLO-aware early-dispatch trigger, and `BestEffort`
/// admissions are the first shed under brownout
/// ([`ServeConfig::brownout_permille`]). `Batch` is the neutral middle:
/// normal batching, no early dispatch, admitted until the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SloClass {
    /// Latency-sensitive: deadlines arm the early-dispatch trigger.
    Interactive,
    /// Throughput-oriented: standard continuous-batching policy.
    Batch,
    /// Sheddable: rejected first when the queue crosses the brownout
    /// high-water mark.
    BestEffort,
}

impl SloClass {
    /// Every class, in serialized/report order.
    pub const ALL: [SloClass; 3] = [SloClass::Interactive, SloClass::Batch, SloClass::BestEffort];

    /// Dense index into per-class tables (`ALL[idx] == self`).
    pub fn index(self) -> usize {
        match self {
            SloClass::Interactive => 0,
            SloClass::Batch => 1,
            SloClass::BestEffort => 2,
        }
    }

    /// The kebab-case name used by serialization and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Batch => "batch",
            SloClass::BestEffort => "best-effort",
        }
    }

    /// Parses the kebab-case name ([`SloClass::name`]).
    ///
    /// # Errors
    /// Returns the unknown name so CLI surfaces can cite it.
    pub fn parse(s: &str) -> Result<Self, &str> {
        match s {
            "interactive" => Ok(SloClass::Interactive),
            "batch" => Ok(SloClass::Batch),
            "best-effort" => Ok(SloClass::BestEffort),
            other => Err(other),
        }
    }
}

impl fmt::Display for SloClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// Hand-rolled serde impls: the class serializes as its kebab-case name
// (the vendored derive has no `rename_all`, and reports should read
// `"best-effort"`, not `"BestEffort"`).
impl Serialize for SloClass {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.name().to_string())
    }
}

impl Deserialize for SloClass {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = String::from_value(v)?;
        SloClass::parse(&s)
            .map_err(|other| serde::Error::custom(format!("unknown SLO class {other:?}")))
    }
}

/// Serving-layer parameters: batching, admission and fairness policy, the
/// large-batch fleet lane, and the robustness knobs (SLO classes,
/// brownout shedding, the per-lane circuit breaker and the serve-level
/// core-death campaign).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Most requests one dispatch may coalesce.
    pub max_batch: usize,
    /// Longest an idle lane lets the oldest queued request wait (in
    /// microticks) for a batch to fill before dispatching what it has.
    pub max_wait_ticks: u64,
    /// Bound on queued (admitted, not yet dispatched) requests across all
    /// models; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Fair-share weight per tenant; tenant ids index this table.
    pub tenant_weights: Vec<u64>,
    /// SLO class per tenant; indexed by the same tenant ids as
    /// `tenant_weights` (the two tables must be the same length).
    pub tenant_classes: Vec<SloClass>,
    /// Brownout high-water mark as a permille of `queue_capacity`: once
    /// queue depth reaches `queue_capacity * brownout_permille / 1000`,
    /// `BestEffort` admissions are rejected. `1000` puts the mark at the
    /// queue bound itself, i.e. brownout never fires before ordinary
    /// admission control.
    pub brownout_permille: u16,
    /// Cores of the batch-sharded fleet lane; `1` disables fleet routing.
    pub fleet_cores: usize,
    /// Smallest batch routed through the multi-core fleet lane (only
    /// meaningful when `fleet_cores > 1`).
    pub fleet_batch_threshold: usize,
    /// Consecutive batches with detected faults that trip a lane's
    /// circuit breaker open; `0` disables the breaker.
    pub breaker_threshold: u32,
    /// Virtual ticks an open breaker waits before half-opening (probing
    /// the primary route again). Must be non-zero when the breaker is
    /// enabled.
    pub breaker_cooldown_ticks: u64,
    /// Serve-level chaos: a deterministic core-death campaign attached to
    /// the multi-core fleet lane, so deaths and reshards fire inside
    /// fleet batches mid-serve.
    pub core_deaths: Option<CoreDeathConfig>,
}

impl ServeConfig {
    /// A small default: batches of 8, 10k-tick patience, 64-deep queue,
    /// an interactive and a batch tenant at equal weight, 4-core fleet
    /// lane for batches of 4+, breaker tripping after 2 faulted batches
    /// with a 50k-tick cooldown, brownout at the queue bound (off), no
    /// core deaths.
    pub fn paper_default() -> Self {
        Self {
            max_batch: 8,
            max_wait_ticks: 10_000,
            queue_capacity: 64,
            tenant_weights: vec![1, 1],
            tenant_classes: vec![SloClass::Interactive, SloClass::Batch],
            brownout_permille: 1000,
            fleet_cores: 4,
            fleet_batch_threshold: 4,
            breaker_threshold: 2,
            breaker_cooldown_ticks: 50_000,
            core_deaths: None,
        }
    }

    /// Number of tenants the config schedules.
    pub fn tenants(&self) -> usize {
        self.tenant_weights.len()
    }

    /// The queue depth at which brownout starts shedding `BestEffort`
    /// admissions.
    pub fn brownout_highwater(&self) -> usize {
        (self.queue_capacity * self.brownout_permille as usize / 1000).max(1)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Never panics; returns a typed [`ConfigError`] on inconsistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_batch == 0 {
            return Err(ConfigError::ZeroMaxBatch);
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.tenant_weights.is_empty() {
            return Err(ConfigError::NoTenants);
        }
        if let Some(t) = self.tenant_weights.iter().position(|&w| w == 0) {
            return Err(ConfigError::ZeroTenantWeight(t));
        }
        if self.tenant_classes.len() != self.tenant_weights.len() {
            return Err(ConfigError::TenantClassCountMismatch {
                classes: self.tenant_classes.len(),
                tenants: self.tenant_weights.len(),
            });
        }
        if self.brownout_permille == 0 || self.brownout_permille > 1000 {
            return Err(ConfigError::BrownoutOutOfRange(self.brownout_permille));
        }
        if self.fleet_cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        if self.breaker_threshold > 0 && self.breaker_cooldown_ticks == 0 {
            return Err(ConfigError::ZeroBreakerCooldown);
        }
        Ok(())
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Typed failures of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The serving or model configuration is inconsistent.
    Config(ConfigError),
    /// Admission control refused the request: the bounded queue is full.
    Rejected {
        /// Tenant whose request was refused.
        tenant: usize,
        /// Queue occupancy at the refusal.
        queue_depth: usize,
        /// The configured bound it hit.
        capacity: usize,
        /// Earliest virtual tick a queue slot is expected to free (the
        /// next dispatch across all lanes) — the backoff hint the load
        /// generator's retry loop respects.
        retry_after: u64,
    },
    /// Brownout shed a `BestEffort` admission: queue depth crossed the
    /// configured high-water mark while capacity remained for higher
    /// classes.
    BrownedOut {
        /// Tenant whose request was shed.
        tenant: usize,
        /// Queue occupancy at the refusal.
        queue_depth: usize,
        /// The brownout high-water mark it crossed.
        highwater: usize,
        /// Earliest virtual tick a queue slot is expected to free.
        retry_after: u64,
    },
    /// A request named a tenant outside the configured weight table.
    UnknownTenant {
        /// The out-of-range tenant id.
        tenant: usize,
        /// Number of configured tenants.
        tenants: usize,
    },
    /// A request named a model id the registry does not hold.
    UnknownModel(usize),
    /// Compilation or execution failed underneath the server.
    Engine(EngineError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(e) => write!(f, "serve config: {e}"),
            ServeError::Rejected {
                tenant,
                queue_depth,
                capacity,
                retry_after,
            } => write!(
                f,
                "request rejected for tenant {tenant}: queue at {queue_depth}/{capacity} (retry after tick {retry_after})"
            ),
            ServeError::BrownedOut {
                tenant,
                queue_depth,
                highwater,
                retry_after,
            } => write!(
                f,
                "best-effort request browned out for tenant {tenant}: queue at {queue_depth} crossed high-water {highwater} (retry after tick {retry_after})"
            ),
            ServeError::UnknownTenant { tenant, tenants } => {
                write!(f, "tenant {tenant} outside the {tenants}-tenant table")
            }
            ServeError::UnknownModel(id) => write!(f, "model id {id} not registered"),
            ServeError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Config(e) => Some(e),
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Config(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

pub use loadgen::{run_load, LoadGenConfig};
pub use registry::{ModelId, ModelRegistry};
pub use report::{ChaosTwin, ClassStats, ServeReport, TenantStats};
pub use server::{Completion, Disposition, Server, ServerStats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_config_validates() {
        assert!(ServeConfig::paper_default().validate().is_ok());
        let mut c = ServeConfig::paper_default();
        c.max_batch = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroMaxBatch));
        let mut c = ServeConfig::paper_default();
        c.queue_capacity = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroQueueCapacity));
        let mut c = ServeConfig::paper_default();
        c.tenant_weights.clear();
        assert_eq!(c.validate(), Err(ConfigError::NoTenants));
        let mut c = ServeConfig::paper_default();
        c.tenant_weights = vec![2, 0];
        assert_eq!(c.validate(), Err(ConfigError::ZeroTenantWeight(1)));
        let mut c = ServeConfig::paper_default();
        c.fleet_cores = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroCores));
        let mut c = ServeConfig::paper_default();
        c.tenant_classes = vec![SloClass::Interactive];
        assert_eq!(
            c.validate(),
            Err(ConfigError::TenantClassCountMismatch {
                classes: 1,
                tenants: 2
            })
        );
        let mut c = ServeConfig::paper_default();
        c.brownout_permille = 0;
        assert_eq!(c.validate(), Err(ConfigError::BrownoutOutOfRange(0)));
        let mut c = ServeConfig::paper_default();
        c.brownout_permille = 1001;
        assert_eq!(c.validate(), Err(ConfigError::BrownoutOutOfRange(1001)));
        let mut c = ServeConfig::paper_default();
        c.breaker_cooldown_ticks = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroBreakerCooldown));
        // Breaker disabled: a zero cooldown is fine.
        c.breaker_threshold = 0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejected_error_names_the_numbers() {
        let e = ServeError::Rejected {
            tenant: 3,
            queue_depth: 64,
            capacity: 64,
            retry_after: 123,
        };
        let s = e.to_string();
        assert!(
            s.contains("tenant 3") && s.contains("64/64") && s.contains("123"),
            "{s}"
        );
        let e = ServeError::BrownedOut {
            tenant: 2,
            queue_depth: 51,
            highwater: 51,
            retry_after: 77,
        };
        let s = e.to_string();
        assert!(
            s.contains("tenant 2") && s.contains("high-water 51") && s.contains("77"),
            "{s}"
        );
    }

    #[test]
    fn slo_class_round_trips_names_and_indices() {
        for (i, class) in SloClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i);
            assert_eq!(SloClass::parse(class.name()), Ok(class));
            assert_eq!(class.to_string(), class.name());
        }
        assert_eq!(SloClass::parse("turbo"), Err("turbo"));
        // The serde names match the CLI names.
        assert_eq!(
            serde_json::to_string(&SloClass::BestEffort).unwrap(),
            "\"best-effort\""
        );
    }

    #[test]
    fn brownout_highwater_scales_with_capacity() {
        let mut c = ServeConfig::paper_default();
        c.queue_capacity = 64;
        c.brownout_permille = 500;
        assert_eq!(c.brownout_highwater(), 32);
        c.brownout_permille = 1000;
        assert_eq!(c.brownout_highwater(), 64);
        // Tiny queues still get a non-zero mark.
        c.queue_capacity = 1;
        c.brownout_permille = 1;
        assert_eq!(c.brownout_highwater(), 1);
    }
}
