//! # ristretto-sim — the Ristretto accelerator model
//!
//! Models the accelerator of §IV of the paper at two fidelity levels:
//!
//! * [`tile`] — a cycle-level simulation of one compute tile (Atomizer →
//!   Atomputer → Atomulator → accumulate buffer), including systolic fill,
//!   ping-pong weight updates and crossbar FIFO backpressure;
//! * [`analytic`] — the closed-form layer/network model built on the
//!   paper's Eq 3–5, cross-validated against the cycle-level tile.
//!
//! The [`engine`] module splits those models into a compile-once/run-many
//! workflow: [`engine::compile`] produces every *static* artifact (weight
//! streams, per-channel statistics, buffer layout, the weight-only balancer
//! grouping) once per network, and [`engine::Session`]s perform only the
//! per-input work. [`backend`] plugs both Ristretto models into the
//! workspace-wide [`baselines::report::Backend`] trait alongside the six
//! baseline machines. [`fleet`] scales the engine to a core array (Fig 7):
//! it shards a compiled network under explicit strategies and routes
//! inter-core activation traffic through the deterministic [`noc`]
//! queueing model, while [`multicore`] keeps the closed-form scaling
//! estimate. [`serve`] deploys it all as a long-lived multi-tenant
//! serving layer: a content-addressed model registry, a bounded request
//! queue with weighted fair dequeue, and a continuous-batching scheduler
//! in virtual time, driven by a seeded closed-loop load generator.
//!
//! Supporting modules: [`config`] (architecture parameters and the paper's
//! experiment presets), [`area`] (Table VI assembly from the `hwmodel`
//! component library), [`balance`] (the greedy w/a load balancer of §IV-E),
//! [`energy`] (event pricing), [`report`] (result types), and
//! [`artifact`]/[`modelcache`] (the versioned on-disk form of compiled
//! networks plus the content-addressed cache that serves it).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analytic;
pub mod area;
pub mod artifact;
pub mod atomizer;
pub mod backend;
pub mod balance;
pub mod config;
pub mod core;
pub mod energy;
pub mod engine;
pub mod fault;
pub mod fleet;
pub mod modelcache;
pub mod multicore;
pub mod noc;
pub mod pipeline;
pub mod ppu;
pub mod report;
pub mod serve;
pub mod tile;
pub mod weightbuf;

/// Glob import of the commonly used items.
pub mod prelude {
    pub use crate::analytic::{simulate_layer, simulate_network, RistrettoSim};
    pub use crate::area::AreaBreakdown;
    pub use crate::atomizer::Atomizer;
    pub use crate::backend::CycleRistretto;
    pub use crate::balance::{balance, BalanceStrategy, ChannelWorkload};
    pub use crate::config::{ConfigError, FleetConfig, RistrettoConfig};
    pub use crate::core::{CoreError, CoreReport, CoreSim};
    pub use crate::energy::RistrettoEnergyModel;
    pub use crate::engine::{
        compile, CompiledLayer, CompiledNetwork, EngineError, NetworkModel, Session, SessionRun,
    };
    pub use crate::fault::{
        CoreDeathConfig, FaultConfig, FaultDetected, FaultInjector, FaultStats, FaultStructure,
    };
    pub use crate::fleet::{Fleet, FleetReport, FleetRun, ShardPlan, ShardStrategy};
    pub use crate::modelcache::{compile_cached, CacheError, CacheKey, CacheStats, ModelCache};
    pub use crate::noc::{Noc, NocConfig, NocReport};
    pub use crate::pipeline::{FunctionalPipeline, PipelineLayer};
    pub use crate::ppu::{PostProcessor, PpuOutput};
    pub use crate::report::{LayerReport, NetworkReport};
    pub use crate::serve::{
        run_load, LoadGenConfig, ModelId, ModelRegistry, ServeConfig, ServeError, ServeReport,
        Server, TenantStats,
    };
    pub use crate::tile::{TileReport, TileSim};
    pub use baselines::report::Backend;
}
