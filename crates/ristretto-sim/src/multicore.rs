//! Multi-core scaling (Fig 7 shows the accelerator as an array of compute
//! cores sharing an I/O interface).
//!
//! Cores are coarse-grained: each runs whole layers independently, so the
//! natural parallelism axes are *batch* (different images per core) and
//! *output-channel groups* (kernels split across cores within one image,
//! with activations broadcast). Both are modelled analytically on top of
//! the single-core simulator.

use crate::analytic::RistrettoSim;
use crate::config::{ConfigError, RistrettoConfig};
use crate::report::NetworkReport;
use qnn::workload::NetworkStats;
use serde::{Deserialize, Serialize};

/// How layers are spread across cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MulticoreMode {
    /// Each core processes a different input image; throughput scales with
    /// cores, single-image latency does not.
    Batch,
    /// Kernels (output channels) split across cores per layer; activations
    /// are broadcast over the I/O interface. Latency improves, at the cost
    /// of duplicated activation traffic.
    OutputChannels,
}

/// A multi-core Ristretto.
#[derive(Debug, Clone)]
pub struct Multicore {
    cores: usize,
    mode: MulticoreMode,
    sim: RistrettoSim,
}

/// Multi-core simulation summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticoreReport {
    /// Cores configured.
    pub cores: usize,
    /// Mode used.
    pub mode: MulticoreMode,
    /// Latency of one inference (cycles).
    pub latency_cycles: u64,
    /// Throughput in inferences per mega-cycle.
    pub throughput_per_mcycle: f64,
    /// Total DRAM traffic per inference (bits), including broadcast
    /// duplication in output-channel mode.
    pub dram_bits_per_inference: u64,
}

impl Multicore {
    /// Builds an `cores`-core accelerator from a per-core configuration.
    ///
    /// # Panics
    /// Panics if `cores == 0` or the configuration is invalid; use
    /// [`Multicore::try_new`] for a fallible variant.
    pub fn new(cores: usize, mode: MulticoreMode, cfg: RistrettoConfig) -> Self {
        Self::try_new(cores, mode, cfg).expect("valid multi-core configuration")
    }

    /// Fallible variant of [`Multicore::new`].
    ///
    /// # Errors
    /// Returns [`ConfigError::ZeroCores`] when `cores == 0`, or the
    /// per-core configuration's own [`ConfigError`].
    pub fn try_new(
        cores: usize,
        mode: MulticoreMode,
        cfg: RistrettoConfig,
    ) -> Result<Self, ConfigError> {
        if cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        Ok(Self {
            cores,
            mode,
            sim: RistrettoSim::try_new(cfg)?,
        })
    }

    /// Simulates one network.
    pub fn simulate_network(&self, net: &NetworkStats) -> MulticoreReport {
        let single: NetworkReport = self.sim.simulate_network(net);
        let single_cycles = single.total_cycles();
        let single_dram: u64 = single.layers.iter().map(|l| l.dram_bits).sum();
        match self.mode {
            MulticoreMode::Batch => MulticoreReport {
                cores: self.cores,
                mode: self.mode,
                latency_cycles: single_cycles,
                throughput_per_mcycle: self.cores as f64 / single_cycles as f64 * 1e6,
                dram_bits_per_inference: single_dram,
            },
            MulticoreMode::OutputChannels => {
                // Per layer, kernels split across cores: each core holds
                // out_c / cores kernels, so the per-channel static stream
                // shrinks ~cores-fold and the layer's cycles divide, floored
                // by the activation streaming time (t atoms must still pass
                // through once).
                let mut latency = 0u64;
                let mut dram = 0u64;
                for layer in &single.layers {
                    let floor = layer.atom_mults / layer.deliveries.max(1); // ~atoms per pass
                    let split = (layer.cycles / self.cores as u64).max(floor).max(1);
                    latency += split;
                    dram += layer.dram_bits;
                }
                // Activations are broadcast to every core: duplicate the
                // activation share of traffic (approximate as half).
                let broadcast_overhead = single_dram / 2 * (self.cores as u64 - 1);
                MulticoreReport {
                    cores: self.cores,
                    mode: self.mode,
                    latency_cycles: latency,
                    throughput_per_mcycle: 1e6 / latency as f64,
                    dram_bits_per_inference: dram + broadcast_overhead,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::models::NetworkId;
    use qnn::quant::BitWidth;
    use qnn::workload::PrecisionPolicy;

    fn net() -> NetworkStats {
        NetworkStats::generate(
            NetworkId::AlexNet,
            PrecisionPolicy::Uniform(BitWidth::W4),
            2,
            31,
        )
    }

    #[test]
    fn batch_mode_scales_throughput_not_latency() {
        let n = net();
        let one = Multicore::new(1, MulticoreMode::Batch, RistrettoConfig::paper_default())
            .simulate_network(&n);
        let four = Multicore::new(4, MulticoreMode::Batch, RistrettoConfig::paper_default())
            .simulate_network(&n);
        assert_eq!(one.latency_cycles, four.latency_cycles);
        assert!((four.throughput_per_mcycle / one.throughput_per_mcycle - 4.0).abs() < 1e-9);
        assert_eq!(one.dram_bits_per_inference, four.dram_bits_per_inference);
    }

    #[test]
    fn output_channel_mode_cuts_latency_but_adds_traffic() {
        let n = net();
        let one = Multicore::new(
            1,
            MulticoreMode::OutputChannels,
            RistrettoConfig::paper_default(),
        )
        .simulate_network(&n);
        let four = Multicore::new(
            4,
            MulticoreMode::OutputChannels,
            RistrettoConfig::paper_default(),
        )
        .simulate_network(&n);
        assert!(four.latency_cycles < one.latency_cycles);
        assert!(
            four.latency_cycles * 4 >= one.latency_cycles,
            "sub-linear due to floors"
        );
        assert!(four.dram_bits_per_inference > one.dram_bits_per_inference);
    }
}
