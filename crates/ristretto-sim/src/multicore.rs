//! Closed-form multi-core scaling (Fig 7 shows the accelerator as an
//! array of compute cores sharing an I/O interface).
//!
//! Cores are coarse-grained: each runs whole layers independently, so the
//! natural parallelism axes are *batch* (different images per core) and
//! *output-channel groups* (kernels split across cores within one image,
//! with activations broadcast). Both are modelled analytically on top of
//! the single-core simulator; the sharded *execution-level* counterpart —
//! which actually runs shard slices through the engine and routes
//! activation traffic through a queueing NoC — lives in [`crate::fleet`].
//!
//! Reports are integer-only in their serialized form: throughput is a
//! *derived* ratio ([`MulticoreReport::throughput_per_mcycle`]), never a
//! stored `f64`, so multi-core numbers stay byte-stable cross-platform
//! like the rest of the stats gate.

use crate::analytic::RistrettoSim;
use crate::area::AreaBreakdown;
use crate::config::{ConfigError, RistrettoConfig};
use crate::report::NetworkReport;
use baselines::report::{Backend, BaselineLayerReport};
use hwmodel::ComponentLib;
use qnn::workload::{LayerStats, NetworkStats};
use serde::{Deserialize, Serialize};

/// How layers are spread across cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MulticoreMode {
    /// Each core processes a different input image; throughput scales with
    /// cores, single-image latency does not.
    Batch,
    /// Kernels (output channels) split across cores per layer; activations
    /// are broadcast over the I/O interface. Latency improves, at the cost
    /// of duplicated activation traffic.
    OutputChannels,
}

/// A multi-core Ristretto.
#[derive(Debug, Clone)]
pub struct Multicore {
    cores: usize,
    mode: MulticoreMode,
    sim: RistrettoSim,
}

/// Multi-core simulation summary. Integer-only: every serialized field is
/// a cycle or bit count; ratios are derived at display time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MulticoreReport {
    /// Cores configured.
    pub cores: usize,
    /// Mode used.
    pub mode: MulticoreMode,
    /// Latency of one inference (cycles).
    pub latency_cycles: u64,
    /// Inferences the fleet completes per `latency_cycles` pass: `cores`
    /// in batch mode (one image per core), 1 in output-channel mode.
    pub inferences_per_pass: u64,
    /// Total DRAM traffic per inference (bits), including broadcast
    /// duplication in output-channel mode.
    pub dram_bits_per_inference: u64,
}

impl MulticoreReport {
    /// Throughput in inferences per mega-cycle — derived, never
    /// serialized.
    pub fn throughput_per_mcycle(&self) -> f64 {
        if self.latency_cycles == 0 {
            return 0.0;
        }
        self.inferences_per_pass as f64 * 1e6 / self.latency_cycles as f64
    }
}

impl Multicore {
    /// Builds an `cores`-core accelerator from a per-core configuration.
    ///
    /// # Panics
    /// Panics if `cores == 0` or the configuration is invalid; use
    /// [`Multicore::try_new`] for a fallible variant.
    pub fn new(cores: usize, mode: MulticoreMode, cfg: RistrettoConfig) -> Self {
        Self::try_new(cores, mode, cfg).expect("valid multi-core configuration")
    }

    /// Fallible variant of [`Multicore::new`].
    ///
    /// # Errors
    /// Returns [`ConfigError::ZeroCores`] when `cores == 0`, or the
    /// per-core configuration's own [`ConfigError`].
    pub fn try_new(
        cores: usize,
        mode: MulticoreMode,
        cfg: RistrettoConfig,
    ) -> Result<Self, ConfigError> {
        if cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        Ok(Self {
            cores,
            mode,
            sim: RistrettoSim::try_new(cfg)?,
        })
    }

    /// Cores configured.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Mode in use.
    pub fn mode(&self) -> MulticoreMode {
        self.mode
    }

    /// Simulates one network.
    pub fn simulate_network(&self, net: &NetworkStats) -> MulticoreReport {
        let single: NetworkReport = self.sim.simulate_network(net);
        let single_cycles = single.total_cycles();
        let single_dram: u64 = single.layers.iter().map(|l| l.dram_bits).sum();
        match self.mode {
            MulticoreMode::Batch => MulticoreReport {
                cores: self.cores,
                mode: self.mode,
                latency_cycles: single_cycles,
                inferences_per_pass: self.cores as u64,
                dram_bits_per_inference: single_dram,
            },
            MulticoreMode::OutputChannels => {
                // Per layer, kernels split across cores: each core holds
                // out_c / cores kernels, so the per-channel static stream
                // shrinks ~cores-fold and the layer's cycles divide, floored
                // by the activation streaming time (t atoms must still pass
                // through once).
                let mut latency = 0u64;
                let mut dram = 0u64;
                // Activations are broadcast to every core: the layer
                // report's measured activation traffic share (fetch,
                // re-fetch and writeback) is duplicated per extra core;
                // weights are already partitioned, so their share is not.
                let mut broadcast_overhead = 0u64;
                for layer in &single.layers {
                    let floor = layer.atom_mults / layer.deliveries.max(1); // ~atoms per pass
                    let split = (layer.cycles / self.cores as u64).max(floor).max(1);
                    latency += split;
                    dram += layer.dram_bits;
                    broadcast_overhead += layer.act_dram_bits * (self.cores as u64 - 1);
                }
                MulticoreReport {
                    cores: self.cores,
                    mode: self.mode,
                    latency_cycles: latency,
                    inferences_per_pass: 1,
                    dram_bits_per_inference: dram + broadcast_overhead,
                }
            }
        }
    }
}

impl Backend for Multicore {
    fn name(&self) -> &'static str {
        // `Backend::name` returns a static label; expose the mode (the
        // core count is in every report row this backend produces).
        match self.mode {
            MulticoreMode::Batch => "Ristretto-mc/batch",
            MulticoreMode::OutputChannels => "Ristretto-mc/oc",
        }
    }

    fn area_mm2(&self) -> f64 {
        self.cores as f64
            * AreaBreakdown::from_config(self.sim.config(), &ComponentLib::n28()).total()
    }

    fn simulate_layer(&self, stats: &LayerStats) -> BaselineLayerReport {
        let r = self.sim.simulate_layer(stats, false);
        match self.mode {
            // Batch mode leaves single-image layer latency untouched.
            MulticoreMode::Batch => BaselineLayerReport {
                name: r.name,
                cycles: r.cycles,
                effectual_ops: r.atom_mults,
                dram_bits: r.dram_bits,
                energy: r.energy,
            },
            // Output-channel mode divides the layer's cycles (floored by
            // one streaming pass) and duplicates its activation traffic.
            MulticoreMode::OutputChannels => {
                let floor = r.atom_mults / r.deliveries.max(1);
                BaselineLayerReport {
                    name: r.name,
                    cycles: (r.cycles / self.cores as u64).max(floor).max(1),
                    effectual_ops: r.atom_mults,
                    dram_bits: r.dram_bits + r.act_dram_bits * (self.cores as u64 - 1),
                    energy: r.energy,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::models::NetworkId;
    use qnn::quant::BitWidth;
    use qnn::workload::PrecisionPolicy;

    fn net() -> NetworkStats {
        NetworkStats::generate(
            NetworkId::AlexNet,
            PrecisionPolicy::Uniform(BitWidth::W4),
            2,
            31,
        )
    }

    #[test]
    fn batch_mode_scales_throughput_not_latency() {
        let n = net();
        let one = Multicore::new(1, MulticoreMode::Batch, RistrettoConfig::paper_default())
            .simulate_network(&n);
        let four = Multicore::new(4, MulticoreMode::Batch, RistrettoConfig::paper_default())
            .simulate_network(&n);
        assert_eq!(one.latency_cycles, four.latency_cycles);
        assert_eq!(one.inferences_per_pass, 1);
        assert_eq!(four.inferences_per_pass, 4);
        assert!(
            (four.throughput_per_mcycle() / one.throughput_per_mcycle() - 4.0).abs() < 1e-9,
            "derived throughput still scales linearly"
        );
        assert_eq!(one.dram_bits_per_inference, four.dram_bits_per_inference);
    }

    #[test]
    fn output_channel_mode_cuts_latency_but_adds_traffic() {
        let n = net();
        let one = Multicore::new(
            1,
            MulticoreMode::OutputChannels,
            RistrettoConfig::paper_default(),
        )
        .simulate_network(&n);
        let four = Multicore::new(
            4,
            MulticoreMode::OutputChannels,
            RistrettoConfig::paper_default(),
        )
        .simulate_network(&n);
        assert!(four.latency_cycles < one.latency_cycles);
        assert!(
            four.latency_cycles * 4 >= one.latency_cycles,
            "sub-linear due to floors"
        );
        assert!(four.dram_bits_per_inference > one.dram_bits_per_inference);
    }

    #[test]
    fn broadcast_overhead_is_exact_activation_traffic() {
        let n = net();
        let sim = RistrettoSim::new(RistrettoConfig::paper_default());
        let single = sim.simulate_network(&n);
        let act_total: u64 = single.layers.iter().map(|l| l.act_dram_bits).sum();
        let dram_total: u64 = single.layers.iter().map(|l| l.dram_bits).sum();
        for cores in [2, 4, 8] {
            let mc = Multicore::new(
                cores,
                MulticoreMode::OutputChannels,
                RistrettoConfig::paper_default(),
            )
            .simulate_network(&n);
            assert_eq!(
                mc.dram_bits_per_inference,
                dram_total + act_total * (cores as u64 - 1),
                "{cores} cores"
            );
        }
    }

    #[test]
    fn multicore_is_a_backend() {
        let n = net();
        let oc = Multicore::new(
            4,
            MulticoreMode::OutputChannels,
            RistrettoConfig::paper_default(),
        );
        let batch = Multicore::new(4, MulticoreMode::Batch, RistrettoConfig::paper_default());
        assert_eq!(Backend::name(&oc), "Ristretto-mc/oc");
        assert_eq!(Backend::name(&batch), "Ristretto-mc/batch");
        assert!(oc.area_mm2() > batch.area_mm2() / 2.0);
        let machines: Vec<&dyn Backend> = vec![&oc, &batch];
        let mut cycles = Vec::new();
        for m in machines {
            let r = Backend::simulate_network(m, &n);
            assert!(r.total_cycles() > 0);
            cycles.push(r.total_cycles());
        }
        // Output-channel sharding beats batch on single-image latency.
        assert!(cycles[0] < cycles[1]);
    }
}
