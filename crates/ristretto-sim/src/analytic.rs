//! Analytic (Eq 3–5) layer- and network-level Ristretto model.
//!
//! Consumes the per-channel statistics of [`qnn::workload::LayerStats`] —
//! exactly the quantities the real machine knows before computation starts
//! (§IV-E) — and produces cycles, utilization and a priced energy
//! breakdown. Cross-validated against the cycle-level [`crate::tile`]
//! simulator by the integration tests.

use crate::balance::{balance, BalanceStrategy, ChannelWorkload};
use crate::config::{ConfigError, RistrettoConfig};
use crate::energy::{RistrettoEnergyModel, COO_META_BITS};
use crate::report::{LayerReport, NetworkReport};
use hwmodel::{ComponentLib, EnergyCounter, TechNode};
use qnn::workload::{LayerStats, NetworkStats};
use rayon::prelude::*;

/// A configured Ristretto simulator.
#[derive(Debug, Clone)]
pub struct RistrettoSim {
    cfg: RistrettoConfig,
    energy: RistrettoEnergyModel,
}

impl RistrettoSim {
    /// Builds a simulator with the default 28nm component library.
    ///
    /// # Panics
    /// Panics if the configuration is internally inconsistent; use
    /// [`RistrettoSim::try_new`] for a fallible variant.
    pub fn new(cfg: RistrettoConfig) -> Self {
        Self::try_new(cfg).expect("valid Ristretto configuration")
    }

    /// Fallible variant of [`RistrettoSim::new`].
    ///
    /// # Errors
    /// Returns the [`ConfigError`] describing the inconsistency.
    pub fn try_new(cfg: RistrettoConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let energy = RistrettoEnergyModel::new(&cfg, &ComponentLib::n28(), TechNode::N28);
        Ok(Self { cfg, energy })
    }

    /// The configuration in use.
    pub fn config(&self) -> &RistrettoConfig {
        &self.cfg
    }

    /// The price table in use.
    pub fn energy_model(&self) -> &RistrettoEnergyModel {
        &self.energy
    }

    /// Simulates one layer. `input_layer` disables load balancing, as the
    /// paper does for the network's first layer (§IV-E).
    ///
    /// # Panics
    /// Panics if `stats` were generated at a different atom granularity
    /// than the configuration computes at.
    pub fn simulate_layer(&self, stats: &LayerStats, input_layer: bool) -> LayerReport {
        assert_eq!(
            stats.atom_bits,
            self.cfg.atom_bits.bits(),
            "LayerStats atom granularity must match the configuration"
        );
        let layer = &stats.layer;
        let n = self.cfg.multipliers as u64;
        let slots_a = self.cfg.atom_bits.slots(stats.a_bits.bits()) as u64;
        let slots_w = self.cfg.atom_bits.slots(stats.w_bits.bits()) as u64;
        let acts_per_ch = (layer.in_h * layer.in_w) as u64;
        let weights_per_ch = (layer.out_channels * layer.kernel * layer.kernel) as u64;

        // Stride-s layers are mapped as s² stride-1 phase sub-convolutions
        // (the standard decomposition: the input splits into s² interleaved
        // submaps, each convolved with its kernel phase). Each channel's
        // static stream splits into `phases` disjoint pieces, so the
        // effective weight-stream length per activation pass shrinks by s².
        // The *functional* CSC model instead implements the paper's §IV-C3
        // compromise (stride-1 coordinates, ineffectual outputs discarded);
        // see DESIGN.md.
        let phases = (layer.stride * layer.stride) as u64;

        // Per-channel workloads: measured non-zero atoms when sparse,
        // dense atom counts for the Ristretto-ns variant.
        // Output channels process in groups of N (one accumulate-buffer
        // bank per channel, §IV-C4), so a channel's static stream splits
        // into `out_groups` sub-streams and each pays its own ⌈·/N⌉
        // rounding — short per-group streams idle multipliers. Modelled by
        // rounding the scheduled stream length up to a multiple of
        // `out_groups · N`.
        let out_groups = (layer.out_channels as u64).div_ceil(n);
        let round_to_groups = |s: u64| -> u64 {
            if s == 0 {
                0
            } else {
                out_groups * n * s.div_ceil(out_groups * n)
            }
        };
        // `real_s[i]`: actual non-zero weight atoms per activation pass
        // (drives multiplication/delivery counts); the scheduled stream
        // length additionally carries the group rounding.
        let mut real_s = Vec::with_capacity(layer.in_channels);
        let workloads: Vec<ChannelWorkload> = (0..layer.in_channels)
            .map(|i| {
                let (t, s) = if self.cfg.sparse {
                    (
                        stats.act_atoms_per_channel[i],
                        stats.weight_atoms_per_channel[i],
                    )
                } else {
                    (acts_per_ch * slots_a, weights_per_ch * slots_w)
                };
                let s_phase = s.div_ceil(phases);
                real_s.push(s_phase);
                ChannelWorkload {
                    channel: i,
                    act_atoms: t,
                    weight_atoms: round_to_groups(s_phase),
                }
            })
            .collect();

        // Layers with fewer input channels than tiles (e.g. the 3-channel
        // stem) split each channel's feature-map tiles *spatially* across
        // several compute tiles — the kernels are shared, so only the
        // activation stream divides. This keeps the array busy without any
        // statistics-driven balancing. The split view feeds scheduling only;
        // event counts use the unsplit workloads.
        let balance_view: Vec<ChannelWorkload> = if workloads.len() < self.cfg.tiles {
            let shares = (self.cfg.tiles / workloads.len().max(1)).max(1);
            workloads
                .iter()
                .flat_map(|w| {
                    (0..shares).map(move |s| ChannelWorkload {
                        channel: w.channel * shares + s,
                        act_atoms: w.act_atoms / shares as u64,
                        weight_atoms: w.weight_atoms,
                    })
                })
                .collect()
        } else {
            workloads.clone()
        };

        let strategy = if input_layer {
            BalanceStrategy::None
        } else {
            self.cfg.balancing
        };
        let assignment = balance(&balance_view, self.cfg.tiles, n, strategy);
        let cycles = assignment.makespan();
        let utilization = assignment.utilization();

        // Event counts.
        let values_per_ch = |i: usize| -> u64 {
            if self.cfg.sparse {
                stats.act_values_per_channel[i]
            } else {
                acts_per_ch
            }
        };
        let mut atom_mults = 0u64;
        let mut deliveries = 0u64;
        let mut atomizer_cycles = 0u64;
        let mut input_bits = 0u64;
        let mut weight_bits = 0u64;
        let n_tiles =
            (layer.in_h.div_ceil(self.cfg.tile_h) * layer.in_w.div_ceil(self.cfg.tile_w)) as u64;
        let a_bits = stats.a_bits.bits() as u64;
        let g = self.cfg.atom_bits.bits() as u64;
        for w in &workloads {
            let s = real_s[w.channel];
            let passes = w.weight_atoms.div_ceil(n).max(1);
            atom_mults += w.act_atoms * s;
            deliveries += values_per_ch(w.channel) * s;
            atomizer_cycles += w.act_atoms * passes;
            input_bits += values_per_ch(w.channel) * (a_bits + COO_META_BITS) * passes;
            // Static weights re-stream once per feature-map tile.
            weight_bits += s * (g + 6) * n_tiles;
        }

        let out_values = layer.output_count() as u64;
        let aggregations = out_values * slots_w;
        // Output sparsity proxy: the activation density of this layer.
        let out_nnz = (out_values as f64 * stats.activation.value_density) as u64;
        let output_bits = out_nnz * (a_bits + COO_META_BITS);

        // Off-chip format is the per-value block COO-2D of Fig 8 (value +
        // in-tile coordinate); the per-atom shift/last metadata is derived
        // on chip. Re-fetch follows the loop-tiling model — compression
        // shrinking tensors below the buffer capacities removes re-fetch
        // entirely, which is where the Fig 13/16 energy gap comes from.
        let w_bits_val = stats.w_bits.bits() as u64;
        let (fmap_dram, weight_dram) = if self.cfg.sparse {
            (
                stats.activation.nonzero_values as u64 * (a_bits + COO_META_BITS),
                stats.weight.nonzero_values as u64
                    * (w_bits_val + crate::energy::kernel_meta_bits(layer.kernel)),
            )
        } else {
            (
                stats.activation.len as u64 * a_bits,
                stats.weight.len as u64 * w_bits_val,
            )
        };
        let (act_fetch_bits, weight_dram_bits) = hwmodel::dram::tiled_traffic_split(
            fmap_dram,
            weight_dram,
            (self.cfg.input_buf_kb as u64) << 13,
            (self.cfg.weight_buf_kb as u64) << 13,
        );
        // Output writeback is activation traffic too.
        let act_dram_bits = act_fetch_bits
            + if self.cfg.sparse {
                output_bits
            } else {
                out_values * a_bits
            };
        let dram_bits = act_dram_bits + weight_dram_bits;
        let buffer_bits = input_bits + weight_bits + output_bits;

        let mut counter = EnergyCounter::new();
        self.energy.price_layer(
            &mut counter,
            atom_mults,
            deliveries,
            aggregations,
            atomizer_cycles,
            input_bits,
            weight_bits,
            output_bits,
            dram_bits,
            cycles,
        );

        obs::record(obs::Event::AnalyticLayers, 1);
        obs::record(obs::Event::AnalyticCycles, cycles);
        obs::record(obs::Event::AnalyticAtomMults, atom_mults);
        obs::record(obs::Event::AnalyticDeliveries, deliveries);
        obs::record(obs::Event::AnalyticDramBits, dram_bits);
        obs::record(obs::Event::AnalyticBufferBits, buffer_bits);

        LayerReport {
            name: layer.name.clone(),
            cycles,
            utilization,
            atom_mults,
            deliveries,
            dram_bits,
            act_dram_bits,
            weight_dram_bits,
            buffer_bits,
            energy: counter.breakdown(),
        }
    }

    /// Simulates a whole network (layers sequentially; the first layer is
    /// never balanced).
    pub fn simulate_network(&self, net: &NetworkStats) -> NetworkReport {
        // Layers are modeled independently (only layer 0 differs, by the
        // `input_layer` flag); fan out and collect back in layer order.
        let layers = (0..net.layers.len())
            .into_par_iter()
            .map(|i| self.simulate_layer(&net.layers[i], i == 0))
            .collect();
        NetworkReport {
            network: net.id.name().to_string(),
            precision: net.policy.label(),
            layers,
        }
    }
}

/// Convenience: simulate one layer with a fresh simulator.
pub fn simulate_layer(cfg: &RistrettoConfig, stats: &LayerStats, input_layer: bool) -> LayerReport {
    RistrettoSim::new(*cfg).simulate_layer(stats, input_layer)
}

/// Convenience: simulate a network with a fresh simulator.
pub fn simulate_network(cfg: &RistrettoConfig, net: &NetworkStats) -> NetworkReport {
    RistrettoSim::new(*cfg).simulate_network(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::layers::ConvLayer;
    use qnn::models::NetworkId;
    use qnn::quant::BitWidth;
    use qnn::rng::SeededRng;
    use qnn::workload::{ActivationProfile, PrecisionPolicy, WeightProfile};

    fn small_stats(bits: BitWidth) -> LayerStats {
        let layer = ConvLayer::conv("t", 8, 16, 3, 1, 1, 16, 16).unwrap();
        let mut rng = SeededRng::new(42);
        LayerStats::generate(
            &layer,
            &WeightProfile::benchmark(bits),
            &ActivationProfile::new(bits),
            2,
            &mut rng,
        )
    }

    #[test]
    fn sparse_beats_non_sparse() {
        let stats = small_stats(BitWidth::W8);
        let sparse = simulate_layer(&RistrettoConfig::paper_default(), &stats, false);
        let dense = simulate_layer(
            &RistrettoConfig::paper_default().non_sparse(),
            &stats,
            false,
        );
        assert!(
            sparse.cycles < dense.cycles,
            "{} vs {}",
            sparse.cycles,
            dense.cycles
        );
        assert!(sparse.energy.total_pj() < dense.energy.total_pj());
        assert!(sparse.atom_mults < dense.atom_mults);
    }

    #[test]
    fn lower_precision_is_faster() {
        let c = RistrettoConfig::paper_default();
        let c8 = simulate_layer(&c, &small_stats(BitWidth::W8), false).cycles;
        let c4 = simulate_layer(&c, &small_stats(BitWidth::W4), false).cycles;
        let c2 = simulate_layer(&c, &small_stats(BitWidth::W2), false).cycles;
        assert!(c8 > c4, "8b {c8} vs 4b {c4}");
        assert!(c4 > c2, "4b {c4} vs 2b {c2}");
    }

    #[test]
    fn balancing_improves_or_matches_makespan() {
        let stats = small_stats(BitWidth::W4);
        let base = RistrettoConfig::paper_default();
        let balanced = simulate_layer(&base, &stats, false);
        let unbalanced = simulate_layer(&base.with_balancing(BalanceStrategy::None), &stats, false);
        assert!(balanced.cycles <= unbalanced.cycles);
        assert!(balanced.utilization >= unbalanced.utilization - 1e-12);
    }

    #[test]
    fn input_layer_is_never_balanced() {
        let stats = small_stats(BitWidth::W4);
        let cfg = RistrettoConfig::paper_default();
        let as_input = simulate_layer(&cfg, &stats, true);
        let no_balance = simulate_layer(&cfg.with_balancing(BalanceStrategy::None), &stats, false);
        assert_eq!(as_input.cycles, no_balance.cycles);
    }

    #[test]
    fn network_simulation_produces_all_layers() {
        let net = NetworkStats::generate(
            NetworkId::AlexNet,
            PrecisionPolicy::Uniform(BitWidth::W4),
            2,
            1,
        );
        let report = simulate_network(&RistrettoConfig::paper_default(), &net);
        assert_eq!(report.layers.len(), net.layers.len());
        assert!(report.total_cycles() > 0);
        assert!(report.total_energy().total_pj() > 0.0);
        // AlexNet's conv1 has only 3 input channels (unbalanced input
        // layer), so mean utilization is dominated by it; mid layers
        // should balance well.
        assert!(report.mean_utilization() > 0.05);
        let conv3 = report.layers.iter().find(|l| l.name == "conv3").unwrap();
        assert!(
            conv3.utilization > 0.5,
            "conv3 utilization {}",
            conv3.utilization
        );
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn granularity_mismatch_is_rejected() {
        let stats = small_stats(BitWidth::W4); // generated at 2-bit atoms
        let _ = simulate_layer(&RistrettoConfig::granularity(3), &stats, false);
    }

    #[test]
    fn dram_split_sums_and_activations_dominate_broadcast_share() {
        for cfg in [
            RistrettoConfig::paper_default(),
            RistrettoConfig::paper_default().non_sparse(),
        ] {
            let r = simulate_layer(&cfg, &small_stats(BitWidth::W8), false);
            assert_eq!(r.act_dram_bits + r.weight_dram_bits, r.dram_bits);
            assert!(r.act_dram_bits > 0 && r.weight_dram_bits > 0);
        }
    }

    #[test]
    fn more_multipliers_reduce_cycles() {
        let stats = small_stats(BitWidth::W8);
        let wide = simulate_layer(&RistrettoConfig::paper_default(), &stats, false);
        let narrow = simulate_layer(&RistrettoConfig::half_width(), &stats, false);
        assert!(wide.cycles <= narrow.cycles);
    }
}
