//! Area (and compute-unit power) assembly — the paper's Table VI.
//!
//! Builds the accelerator's area breakdown from the `hwmodel` component
//! library given a [`RistrettoConfig`]. The paper reports for the default
//! configuration (32 tiles × 32 2-bit multipliers, 64/192/96 KiB buffers):
//!
//! | block | mm² |
//! |---|---|
//! | Atomizer (×32) | 0.001 |
//! | Atomputer (×32) | 0.070 |
//! | Atomulator (×32) | 0.128 |
//! | Accu buffer (×32) | 0.496 |
//! | Input / weight / output buffers | 0.118 / 0.302 / 0.154 |
//! | Post-processing unit | 0.023 |
//! | Others | 0.004 |
//! | **Total** | **1.296** |
//!
//! The calibration test pins each block to within a modest tolerance of
//! those values.

use crate::config::RistrettoConfig;
use hwmodel::{ComponentLib, SramMacro, TechNode};
use serde::{Deserialize, Serialize};

/// Fixed post-processing-unit area (compression counters + Atomizer-like
/// scan logic), from Table VI.
const PPU_AREA: f64 = 0.023;
/// Miscellaneous control ("Others" in Table VI).
const OTHERS_AREA: f64 = 0.004;
/// Per-tile control overhead inside the Atomputer (dispatcher, sequencing).
const ATOMPUTER_CTRL_AREA: f64 = 2.0e-4;

/// Table VI-style area breakdown (all values mm², totals across the core).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// All tiles' Atomizers.
    pub atomizer: f64,
    /// All tiles' Atomputers (multipliers, shifters, accumulators, weight
    /// registers, dispatch).
    pub atomputer: f64,
    /// All tiles' Atomulators (address generators, crossbar, FIFOs).
    pub atomulator: f64,
    /// All tiles' accumulate buffers (register files + aggregation shifters).
    pub accu_buffer: f64,
    /// Input data buffer.
    pub input_buffer: f64,
    /// Weight data buffer.
    pub weight_buffer: f64,
    /// Output data buffer.
    pub output_buffer: f64,
    /// Post-processing unit.
    pub ppu: f64,
    /// Miscellaneous control.
    pub others: f64,
}

impl AreaBreakdown {
    /// Assembles the breakdown for a configuration.
    pub fn from_config(cfg: &RistrettoConfig, lib: &ComponentLib) -> Self {
        let n = cfg.multipliers as f64;
        let g = cfg.atom_bits.bits();
        // Activations are at most 8-bit; their shift options under this
        // granularity (Table IV).
        let act_shift_options = cfg.atom_bits.slots(8);
        // Product width: 2g product bits plus the maximum activation shift.
        let prod_width = (2 * g + (act_shift_options - 1) * g).min(24);
        // Per-multiplier accumulator holds one weight-atom × activation
        // partial: product width plus log2(slots) growth.
        let acc_width = (prod_width + 2).min(cfg.acc_bits);

        let per_mult = lib.multiplier_area(g)
            + lib.shifter_area(prod_width, act_shift_options)
            + lib.accumulator_area(acc_width)
            // Ping-pong weight atom registers + metadata (sign, shift, last).
            + lib.accumulator_area(16);
        let atomputer_tile = n * per_mult + ATOMPUTER_CTRL_AREA;

        let fifo_width = cfg.acc_bits + 9; // payload + bank address
        let atomulator_tile = n * lib.addr_gen_area
            + lib.crossbar_area(cfg.multipliers, cfg.acc_bits)
            + n * lib.fifo_area(cfg.fifo_depth, fifo_width);

        // Accumulate buffer: N banks × entries × acc_bits, double-buffered,
        // as a register file; plus one aggregation shifter per bank.
        let accu_bits = cfg.multipliers * cfg.accu_entries_per_bank * cfg.acc_bits as usize * 2;
        let accu_tile = SramMacro::regfile((accu_bits / 8).max(1), cfg.acc_bits as u32).area_mm2()
            + n * lib.shifter_area(cfg.acc_bits, act_shift_options);

        let tiles = cfg.tiles as f64;
        Self {
            atomizer: tiles * lib.atomizer_area,
            atomputer: tiles * atomputer_tile,
            atomulator: tiles * atomulator_tile,
            accu_buffer: tiles * accu_tile,
            input_buffer: SramMacro::new(cfg.input_buf_kb << 10, 128).area_mm2(),
            weight_buffer: SramMacro::new(cfg.weight_buf_kb << 10, 128).area_mm2(),
            output_buffer: SramMacro::new(cfg.output_buf_kb << 10, 128).area_mm2(),
            ppu: PPU_AREA,
            others: OTHERS_AREA,
        }
    }

    /// Total core area (mm²).
    pub fn total(&self) -> f64 {
        self.atomizer
            + self.atomputer
            + self.atomulator
            + self.accu_buffer
            + self.input_buffer
            + self.weight_buffer
            + self.output_buffer
            + self.ppu
            + self.others
    }

    /// Compute-unit area only (tiles, excluding the shared data buffers) —
    /// the quantity of the Fig 19a granularity ablation.
    pub fn compute_units(&self) -> f64 {
        self.atomizer + self.atomputer + self.atomulator + self.accu_buffer
    }
}

/// Peak compute-unit power (mW) at full activity — the Fig 19a metric.
/// Dynamic power of every multiplier/shifter/accumulator/address-generator
/// firing each cycle plus leakage on the compute-unit area.
pub fn compute_unit_power_mw(cfg: &RistrettoConfig, lib: &ComponentLib, tech: TechNode) -> f64 {
    let g = cfg.atom_bits.bits();
    let act_shift_options = cfg.atom_bits.slots(8);
    let prod_width = (2 * g + (act_shift_options - 1) * g).min(24);
    let acc_width = (prod_width + 2).min(cfg.acc_bits);
    let per_mult_pj = lib.multiplier_energy(g)
        + lib.shifter_energy(prod_width, act_shift_options)
        + lib.accumulator_energy(acc_width);
    let per_delivery_pj = lib.addr_gen_energy
        + lib.crossbar_energy(cfg.multipliers, cfg.acc_bits)
        + lib.fifo_energy(cfg.acc_bits)
        + lib.accumulator_energy(cfg.acc_bits);
    // At peak, every multiplier fires per cycle; deliveries occur roughly
    // once per slots(a) cycles per multiplier.
    let deliveries_per_cycle = cfg.multipliers as f64 / act_shift_options as f64;
    let dynamic_pj_per_cycle = cfg.multipliers as f64 * per_mult_pj
        + deliveries_per_cycle * per_delivery_pj
        + lib.atomizer_energy;
    let dynamic_mw = tech.power_mw(dynamic_pj_per_cycle) * cfg.tiles as f64;
    let area = AreaBreakdown::from_config(cfg, lib).compute_units();
    dynamic_mw + lib.leakage_mw_per_mm2 * area
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_breakdown() -> AreaBreakdown {
        AreaBreakdown::from_config(&RistrettoConfig::paper_default(), &ComponentLib::n28())
    }

    #[track_caller]
    fn assert_close(actual: f64, expected: f64, tol: f64, what: &str) {
        let rel = (actual - expected).abs() / expected;
        assert!(
            rel <= tol,
            "{what}: measured {actual:.4} vs Table VI {expected:.4} ({:.0}% off)",
            rel * 100.0
        );
    }

    #[test]
    fn table6_calibration() {
        let a = paper_breakdown();
        assert_close(a.atomizer, 0.001, 0.10, "atomizer");
        assert_close(a.atomputer, 0.070, 0.35, "atomputer");
        assert_close(a.atomulator, 0.128, 0.35, "atomulator");
        assert_close(a.accu_buffer, 0.496, 0.35, "accu buffer");
        assert_close(a.input_buffer, 0.118, 0.20, "input buffer");
        assert_close(a.weight_buffer, 0.302, 0.20, "weight buffer");
        assert_close(a.output_buffer, 0.154, 0.20, "output buffer");
        assert_close(a.total(), 1.296, 0.25, "total");
    }

    #[test]
    fn fig19a_granularity_area_ordering() {
        let lib = ComponentLib::n28();
        let a1 = AreaBreakdown::from_config(&RistrettoConfig::granularity(1), &lib).compute_units();
        let a2 = AreaBreakdown::from_config(&RistrettoConfig::granularity(2), &lib).compute_units();
        let a3 = AreaBreakdown::from_config(&RistrettoConfig::granularity(3), &lib).compute_units();
        // Paper: the 1-bit variant costs ~3.34x the 2-bit one; 3-bit is cheapest.
        let r12 = a1 / a2;
        assert!((2.0..5.5).contains(&r12), "1b/2b area ratio {r12}");
        assert!(a3 < a2, "3-bit atoms should be the smallest ({a3} vs {a2})");
    }

    #[test]
    fn fig19a_granularity_power_ordering() {
        let lib = ComponentLib::n28();
        let tech = TechNode::N28;
        let p1 = compute_unit_power_mw(&RistrettoConfig::granularity(1), &lib, tech);
        let p2 = compute_unit_power_mw(&RistrettoConfig::granularity(2), &lib, tech);
        let p3 = compute_unit_power_mw(&RistrettoConfig::granularity(3), &lib, tech);
        let r12 = p1 / p2;
        assert!((2.0..5.5).contains(&r12), "1b/2b power ratio {r12}");
        assert!(p3 < p2, "3-bit power should be lowest ({p3} vs {p2})");
    }

    #[test]
    fn area_scales_with_tiles() {
        let lib = ComponentLib::n28();
        let one = AreaBreakdown::from_config(&RistrettoConfig::paper_default().with_tiles(1), &lib);
        let two = AreaBreakdown::from_config(&RistrettoConfig::paper_default().with_tiles(2), &lib);
        assert!((two.atomputer / one.atomputer - 2.0).abs() < 1e-9);
        // Shared buffers do not scale with tiles.
        assert_eq!(one.input_buffer, two.input_buffer);
    }
}
