//! Load balancing across compute tiles (paper §IV-E).
//!
//! Input feature maps (channels) are partitioned into `M` groups, one per
//! compute tile. Because the condensed streaming computation's latency is
//! the closed form `C_T = T·⌈S/N⌉` (Eq 5), the workload of a channel is
//! known *before* computation starts — unlike SparTen, whose inner-join
//! discovers matches on the fly — so Ristretto can balance on the joint
//! weight *and* activation statistics.
//!
//! Three strategies are modelled, matching Fig 18:
//! * `None` — cyclic assignment, ignoring statistics;
//! * `WeightOnly` — greedy on non-zero weight atoms only (SparTen-style);
//! * `WeightActivation` — greedy on the full `C_T` metric.

use serde::{Deserialize, Serialize};

/// Which statistics drive the balancer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BalanceStrategy {
    /// Cyclic assignment ("no balancing").
    None,
    /// Greedy on weight statistics only ("w balancing").
    WeightOnly,
    /// Greedy on the joint weight/activation metric of Eq 5
    /// ("w/a balancing", Ristretto's approach).
    WeightActivation,
}

impl std::fmt::Display for BalanceStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BalanceStrategy::None => "no balancing",
            BalanceStrategy::WeightOnly => "w balancing",
            BalanceStrategy::WeightActivation => "w/a balancing",
        })
    }
}

/// Per-channel workload statistics the balancer consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelWorkload {
    /// Input-channel index.
    pub channel: usize,
    /// Non-zero activation atoms in this channel's feature map (`T_i`).
    pub act_atoms: u64,
    /// Non-zero weight atoms in this channel's kernel slices (`S_i`).
    pub weight_atoms: u64,
}

impl ChannelWorkload {
    /// The cycle metric of Eq 5 for `n` multipliers: `T_i · ⌈S_i/N⌉`.
    pub fn cycles(&self, n: u64) -> u64 {
        atomstream::cycles::tile_cycles(self.act_atoms, self.weight_atoms, n)
    }
}

/// The balancer's output: channel groups (one per tile) plus the per-tile
/// cycle estimate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Channel indices per tile; may contain empty groups when there are
    /// fewer channels than tiles.
    pub groups: Vec<Vec<usize>>,
    /// Estimated cycles per tile (Eq 5 summed over the group's channels).
    pub tile_cycles: Vec<u64>,
}

impl Assignment {
    /// Layer latency: the slowest tile (compute tiles synchronize per layer).
    pub fn makespan(&self) -> u64 {
        self.tile_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Total work across tiles.
    pub fn total_cycles(&self) -> u64 {
        self.tile_cycles.iter().sum()
    }

    /// Compute utilization in `[0, 1]`: mean tile work over makespan.
    pub fn utilization(&self) -> f64 {
        let span = self.makespan();
        if span == 0 || self.tile_cycles.is_empty() {
            return 1.0;
        }
        self.total_cycles() as f64 / (span as f64 * self.tile_cycles.len() as f64)
    }

    /// All channel indices in this assignment, sorted ascending.
    pub fn assigned_channels(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self.groups.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }
}

/// Checks that a family of groupings — e.g. the per-shard balancer groups
/// of a fleet plan — exactly partitions `0..channels`: every channel
/// appears in exactly one group across all groupings, none is dropped and
/// none duplicated. The fleet layer relies on this invariant for
/// byte-identical reconstruction of the unsharded output.
#[must_use]
pub fn is_exact_partition<'a>(
    groups: impl IntoIterator<Item = &'a [usize]>,
    channels: usize,
) -> bool {
    let mut seen = vec![false; channels];
    for group in groups {
        for &c in group {
            if c >= channels || seen[c] {
                return false;
            }
            seen[c] = true;
        }
    }
    seen.into_iter().all(|s| s)
}

/// Partitions channels into `tiles` groups under the given strategy.
/// `n` is the per-tile multiplier count (needed by the `C_T` metric).
///
/// # Panics
/// Panics if `tiles == 0` or `n == 0`.
pub fn balance(
    workloads: &[ChannelWorkload],
    tiles: usize,
    n: u64,
    strategy: BalanceStrategy,
) -> Assignment {
    assert!(tiles > 0, "tile count must be non-zero");
    assert!(n > 0, "multiplier count must be non-zero");
    let assignment = match strategy {
        BalanceStrategy::None => cyclic(workloads, tiles, n),
        BalanceStrategy::WeightOnly => greedy(workloads, tiles, n, |w| w.weight_atoms),
        BalanceStrategy::WeightActivation => greedy(workloads, tiles, n, |w| w.cycles(n)),
    };
    // Observability: residual imbalance is the per-layer stall budget of
    // Fig 18 — tiles finishing early idle until the slowest tile's Eq 5
    // makespan.
    let makespan = assignment.makespan();
    let total = assignment.total_cycles();
    obs::record(obs::Event::BalanceInvocations, 1);
    obs::record(obs::Event::BalanceMakespanCycles, makespan);
    obs::record(obs::Event::BalanceTotalCycles, total);
    obs::record(
        obs::Event::BalanceIdleCycles,
        (makespan * tiles as u64).saturating_sub(total),
    );
    assignment
}

fn cyclic(workloads: &[ChannelWorkload], tiles: usize, n: u64) -> Assignment {
    let mut groups = vec![Vec::new(); tiles];
    for (i, w) in workloads.iter().enumerate() {
        groups[i % tiles].push(w.channel);
    }
    finish(groups, workloads, n)
}

/// The greedy of §IV-E: channels sorted by the metric, each placed where
/// it keeps groups "as close as possible". Implemented as
/// longest-processing-time (LPT) placement: descending metric order, each
/// channel into the currently lightest group — on the paper's examples
/// (2^k channels per tile) this produces exactly the "largest-smallest,
/// second largest-second smallest" pairings the text describes, and it is
/// 4/3-optimal in general.
fn greedy(
    workloads: &[ChannelWorkload],
    tiles: usize,
    n: u64,
    metric: impl Fn(&ChannelWorkload) -> u64,
) -> Assignment {
    let mut order: Vec<&ChannelWorkload> = workloads.iter().collect();
    order.sort_by(|a, b| metric(b).cmp(&metric(a)).then(a.channel.cmp(&b.channel)));
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); tiles];
    let mut loads = vec![0u64; tiles];
    for w in order {
        let slot = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .map(|(i, _)| i)
            .expect("tiles > 0");
        loads[slot] += metric(w);
        groups[slot].push(w.channel);
    }
    finish(groups, workloads, n)
}

fn finish(groups: Vec<Vec<usize>>, workloads: &[ChannelWorkload], n: u64) -> Assignment {
    let by_channel: std::collections::HashMap<usize, &ChannelWorkload> =
        workloads.iter().map(|w| (w.channel, w)).collect();
    let tile_cycles = groups
        .iter()
        .map(|g| g.iter().map(|c| by_channel[c].cycles(n)).sum())
        .collect();
    Assignment {
        groups,
        tile_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(channel: usize, act: u64, weight: u64) -> ChannelWorkload {
        ChannelWorkload {
            channel,
            act_atoms: act,
            weight_atoms: weight,
        }
    }

    fn uneven_workloads(m: usize) -> Vec<ChannelWorkload> {
        (0..m)
            .map(|i| mk(i, 100 + (i as u64 * 97) % 900, 64 + (i as u64 * 53) % 512))
            .collect()
    }

    #[test]
    fn partition_preserves_all_channels() {
        let w = uneven_workloads(128);
        for strategy in [
            BalanceStrategy::None,
            BalanceStrategy::WeightOnly,
            BalanceStrategy::WeightActivation,
        ] {
            let a = balance(&w, 32, 16, strategy);
            assert_eq!(a.groups.len(), 32);
            let mut all: Vec<usize> = a.groups.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..128).collect::<Vec<_>>(), "{strategy}");
        }
    }

    #[test]
    fn wa_balancing_beats_no_balancing() {
        let w = uneven_workloads(128);
        let none = balance(&w, 32, 16, BalanceStrategy::None);
        let wa = balance(&w, 32, 16, BalanceStrategy::WeightActivation);
        assert!(wa.makespan() <= none.makespan());
        assert!(wa.utilization() >= none.utilization());
        // Total work is conserved.
        assert_eq!(wa.total_cycles(), none.total_cycles());
    }

    #[test]
    fn wa_balancing_is_near_optimal_on_uniform_pairs() {
        // Workloads {1..2k} pair up to equal sums under folding.
        let w: Vec<ChannelWorkload> = (0..64).map(|i| mk(i, (i as u64 + 1) * 10, 16)).collect();
        let a = balance(&w, 32, 16, BalanceStrategy::WeightActivation);
        let max = a.makespan();
        let min = a.tile_cycles.iter().copied().min().unwrap();
        assert_eq!(max, min, "folding should equalize an arithmetic sequence");
    }

    #[test]
    fn weight_only_uses_weight_metric() {
        // Two heavy-activation channels that weight-only cannot see.
        let w = vec![mk(0, 1000, 10), mk(1, 1000, 10), mk(2, 1, 10), mk(3, 1, 10)];
        let wo = balance(&w, 2, 16, BalanceStrategy::WeightOnly);
        let wa = balance(&w, 2, 16, BalanceStrategy::WeightActivation);
        // w/a separates the two heavy channels; weight-only may not.
        assert!(wa.makespan() <= wo.makespan());
        assert_eq!(wa.makespan(), 1001);
    }

    #[test]
    fn fewer_channels_than_tiles_leaves_idle_tiles() {
        let w = uneven_workloads(8);
        let a = balance(&w, 32, 16, BalanceStrategy::WeightActivation);
        assert_eq!(a.groups.len(), 32);
        assert_eq!(a.groups.iter().filter(|g| g.is_empty()).count(), 24);
        assert!(a.utilization() < 1.0);
    }

    #[test]
    fn makespan_zero_for_empty() {
        let a = balance(&[], 4, 16, BalanceStrategy::WeightActivation);
        assert_eq!(a.makespan(), 0);
        assert_eq!(a.utilization(), 1.0);
    }

    #[test]
    fn channel_cycles_match_eq5() {
        let w = mk(0, 100, 33);
        assert_eq!(w.cycles(16), 100 * 3);
    }

    #[test]
    fn exact_partition_detects_drops_and_duplicates() {
        let a: &[usize] = &[0, 2];
        let b: &[usize] = &[1, 3];
        assert!(is_exact_partition([a, b], 4));
        // Dropped channel.
        assert!(!is_exact_partition([a, b], 5));
        // Duplicate across groups.
        let dup: &[usize] = &[2, 3];
        assert!(!is_exact_partition([a, dup], 4));
        // Out-of-range channel.
        assert!(!is_exact_partition([a, b], 3));
        // Balancer output partitions by construction.
        let w = uneven_workloads(16);
        let asg = balance(&w, 4, 16, BalanceStrategy::WeightActivation);
        assert!(is_exact_partition(asg.groups.iter().map(Vec::as_slice), 16));
        assert_eq!(asg.assigned_channels(), (0..16).collect::<Vec<_>>());
    }
}
