//! SparTen-mp: the paper's naive mixed-precision/sparsity combination
//! (§II-B2a, evaluated in §V-D).
//!
//! Each CU replaces SparTen's scalar MAC with a Bit Fusion fusion unit
//! (1×8b / 4×4b / 16×2b per cycle). To feed it, **16 inner-joins** work in
//! parallel, each over a 32-bit segment of the bitmask. Two structural
//! problems follow, which this model captures:
//!
//! 1. the per-chunk extraction rate is gated by the most-loaded segment
//!    (each inner-join extracts at most one pair per cycle from its own
//!    segment), so segment imbalance throttles the fusion unit;
//! 2. the 16 inner-joins blow up the CU's area and power (one inner-join is
//!    already >60% of a SparTen CU), hurting area-normalized performance.

use crate::bitfusion::BitFusion;
use crate::report::{Backend, BaselineLayerReport};
use crate::sparten::SparTen;
use crate::stats::{binomial_pmf, expected_max};
use hwmodel::{ComponentLib, EnergyCounter, SramMacro, TechNode};
use qnn::workload::LayerStats;
use serde::{Deserialize, Serialize};

/// A SparTen-mp accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparTenMp {
    /// Number of compute units.
    pub cus: usize,
    /// Parallel inner-joins per CU.
    pub joins: usize,
    /// Bitmask segment length per inner-join.
    pub segment: usize,
    /// Input buffer (KiB).
    pub input_buf_kb: usize,
    /// Weight buffer (KiB).
    pub weight_buf_kb: usize,
    /// Output buffer (KiB).
    pub output_buf_kb: usize,
}

impl SparTenMp {
    /// The paper's configuration: 32 CUs, 16 inner-joins per CU, each over
    /// a 32-long bitmask segment (§V-A1).
    pub fn paper_default() -> Self {
        Self {
            cus: 32,
            joins: 16,
            segment: 32,
            input_buf_kb: 64,
            weight_buf_kb: 192,
            output_buf_kb: 96,
        }
    }

    /// Chunk length covered per extraction round: joins × segment.
    pub fn chunk(&self) -> usize {
        self.joins * self.segment
    }

    /// Expected cycles to process one bitmask chunk: the fusion unit
    /// consumes up to `per_cycle` pairs per cycle, while extraction is
    /// gated by the most-loaded segment (one pair per segment per cycle).
    pub fn chunk_cycles(&self, match_prob: f64, w_bits: u8, a_bits: u8) -> f64 {
        let per_cycle = BitFusion::mults_per_cycle(w_bits, a_bits) as f64;
        let seg_pmf = binomial_pmf(self.segment as u64, match_prob);
        let worst_segment = expected_max(&seg_pmf, self.joins as u64);
        let mean_matches = self.chunk() as f64 * match_prob;
        let consume_limited = mean_matches / per_cycle;
        worst_segment.max(consume_limited).max(1.0)
    }
}

impl Default for SparTenMp {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl Backend for SparTenMp {
    fn name(&self) -> &'static str {
        "SparTen-mp"
    }

    fn area_mm2(&self) -> f64 {
        let lib = ComponentLib::n28();
        // Each of the 16 inner-joins covers a quarter-length mask, costing
        // roughly a quarter of a full inner-join each — still 4x SparTen's
        // matching area per CU.
        let join_area = lib.inner_join_area * self.segment as f64 / 128.0;
        let cu = self.joins as f64 * join_area + lib.fusion_unit_area() + 0.002;
        self.cus as f64 * cu
            + lib.crossbar_area(self.cus, 32)
            + SramMacro::new(self.input_buf_kb << 10, 128).area_mm2()
            + SramMacro::new(self.weight_buf_kb << 10, 128).area_mm2()
            + SramMacro::new(self.output_buf_kb << 10, 128).area_mm2()
    }

    fn simulate_layer(&self, stats: &LayerStats) -> BaselineLayerReport {
        let lib = ComponentLib::n28();
        let tech = TechNode::N28;
        let layer = &stats.layer;
        let match_prob = stats.activation.value_density * stats.weight.value_density;
        let chunk_cycles = self.chunk_cycles(match_prob, stats.w_bits.bits(), stats.a_bits.bits());

        // Work decomposition mirrors SparTen: filters over CUs (weight
        // balancing), chunks per output position.
        let chunks_per_filter =
            (layer.in_channels * layer.kernel * layer.kernel).div_ceil(self.chunk()) as u64;
        let positions = (layer.out_h() * layer.out_w()) as u64;
        let filters_per_cu = (layer.out_channels as u64).div_ceil(self.cus as u64);
        let chunks_per_cu = chunks_per_filter * positions * filters_per_cu;
        // Imbalance across CUs mirrors SparTen's weight balancing quality.
        let loads = SparTen {
            cus: self.cus,
            chunk: self.chunk(),
            ..SparTen::paper_default()
        }
        .balance_filters(stats);
        let matches: u64 = loads.iter().sum();
        let mean_load = matches as f64 / self.cus as f64;
        let imbalance = if mean_load > 0.0 {
            *loads.iter().max().unwrap() as f64 / mean_load
        } else {
            1.0
        };
        let cycles = (chunks_per_cu as f64 * chunk_cycles * imbalance).ceil() as u64;

        let a_bits = 8u64;
        let act_bits_stored =
            stats.activation.nonzero_values as u64 * a_bits + layer.activation_count() as u64;
        let weight_bits_stored =
            stats.weight.nonzero_values as u64 * a_bits + layer.weight_count() as u64;
        let act_read_bits = act_bits_stored * (layer.out_channels as u64 / self.cus as u64).max(1);
        let weight_read_bits = weight_bits_stored * positions / self.chunk() as u64;
        let out_write_bits = layer.output_count() as u64 * 24;
        let dram_bits = hwmodel::dram::tiled_traffic_bits(
            act_bits_stored,
            weight_bits_stored,
            (self.input_buf_kb as u64) << 13,
            (self.weight_buf_kb as u64) << 13,
        ) + (layer.output_count() as f64 * stats.activation.value_density) as u64
            * a_bits;

        let input = SramMacro::new(self.input_buf_kb << 10, 128);
        let weight = SramMacro::new(self.weight_buf_kb << 10, 128);
        let output = SramMacro::new(self.output_buf_kb << 10, 128);

        let mut counter = EnergyCounter::new();
        // All 16 inner-joins switch every extraction cycle whether or not
        // their segment yields a pair — the underutilization the paper
        // calls out.
        let join_energy = lib.inner_join_energy * self.segment as f64 / 128.0;
        let extraction_cycles = (chunks_per_cu as f64 * chunk_cycles) as u64 * self.cus as u64;
        counter.compute(extraction_cycles, self.joins as f64 * join_energy);
        counter.compute(matches, lib.fusion_unit_energy() / 4.0);
        counter.compute(
            layer.output_count() as u64,
            lib.crossbar_energy(self.cus, 32),
        );
        counter.buffer(act_read_bits, input.read_energy_pj(128) / 128.0);
        counter.buffer(weight_read_bits, weight.read_energy_pj(128) / 128.0);
        counter.buffer(out_write_bits, output.write_energy_pj(128) / 128.0);
        counter.dram_bits(dram_bits);
        counter.leakage(lib.leakage_pj(self.area_mm2(), cycles, tech.freq_mhz));

        BaselineLayerReport {
            name: layer.name.clone(),
            cycles,
            effectual_ops: matches,
            dram_bits,
            energy: counter.breakdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::layers::ConvLayer;
    use qnn::quant::BitWidth;
    use qnn::rng::SeededRng;
    use qnn::workload::{ActivationProfile, WeightProfile};

    fn stats(bits: BitWidth) -> LayerStats {
        let layer = ConvLayer::conv("t", 32, 64, 3, 1, 1, 14, 14).unwrap();
        let mut rng = SeededRng::new(1);
        LayerStats::generate(
            &layer,
            &WeightProfile::benchmark(bits),
            &ActivationProfile::new(bits),
            2,
            &mut rng,
        )
    }

    #[test]
    fn faster_than_sparten_at_low_precision() {
        // The added fusion unit + parallel joins should beat plain SparTen
        // for 2/4-bit models (the paper's expectation before area
        // normalization).
        let s = stats(BitWidth::W2);
        let sp = SparTen::paper_default().simulate_layer(&s).cycles;
        let mp = SparTenMp::paper_default().simulate_layer(&s).cycles;
        assert!(mp < sp, "SparTen-mp {mp} vs SparTen {sp}");
    }

    #[test]
    fn chunk_cycles_bounded_by_extraction_and_consumption() {
        let mp = SparTenMp::paper_default();
        // Dense masks at 8b: consumption-limited (512 matches, 1/cycle).
        let dense8 = mp.chunk_cycles(1.0, 8, 8);
        assert!(dense8 >= 500.0, "{dense8}");
        // Sparse masks at 2b: extraction-limited by the worst segment.
        let sparse2 = mp.chunk_cycles(0.05, 2, 2);
        let mean = mp.chunk() as f64 * 0.05 / 16.0;
        assert!(sparse2 >= mean, "{sparse2} vs {mean}");
    }

    #[test]
    fn area_much_larger_than_sparten() {
        let sp = SparTen::paper_default().area_mm2();
        let mp = SparTenMp::paper_default().area_mm2();
        assert!(mp > sp * 1.3, "SparTen-mp area {mp} vs SparTen {sp}");
    }

    #[test]
    fn segment_imbalance_hurts_at_moderate_sparsity() {
        let mp = SparTenMp::paper_default();
        // At match probability p the mean per-segment load is 32p; the
        // expected worst of 16 segments exceeds it.
        let c = mp.chunk_cycles(0.25, 2, 2);
        let mean_per_segment = 32.0 * 0.25;
        assert!(c > mean_per_segment, "{c} vs {mean_per_segment}");
    }
}
