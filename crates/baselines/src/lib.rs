//! # baselines — the comparison accelerators of the Ristretto evaluation
//!
//! Analytic models of the four baselines in the paper's Table V, each
//! consuming the same [`qnn::workload::LayerStats`] the Ristretto simulator
//! uses, under the paper's fairness constraints (equal 2-bit-multiplier
//! count / compute area / peak BitOps and equal buffer capacity):
//!
//! * [`bitfusion`] — Bit Fusion (ISCA'18): an 8×8 systolic array of
//!   spatially decomposable *fusion units* (1×8b / 4×4b / 16×2b per cycle),
//!   dense dataflow;
//! * [`laconic`] — Laconic (ISCA'19): a 2-D broadcast mesh of PEs with 16
//!   bit-serial multipliers each, processing booth-encoded *terms*; dense
//!   value dataflow, term-level (bit) sparsity only;
//! * [`sparten`] — SparTen (MICRO'19): 32 compute units with bitmap
//!   inner-joins extracting one effectual 8-bit pair per cycle, dual-sided
//!   value sparsity, weight-only greedy balancing;
//! * [`sparten_mp`] — the paper's naive combination (§II-B2a): SparTen CUs
//!   whose scalar MAC is replaced with a fusion unit fed by 16 parallel
//!   inner-joins over bitmask segments.
//!
//! Beyond the evaluated four, the Table I / §II taxonomy is completed by:
//!
//! * [`scnn`] — SCNN's outer-product dual-sided sparse dataflow (16-bit),
//! * [`snap`] — SNAP's associative-index-matching inner-product dataflow,
//! * [`laconic_snap`] — the §II-B2b naive Laconic+SNAP combination, used by
//!   the motivation experiment to quantify why direct combinations lose.
//!
//! Shared machinery: [`booth`] (term counting), [`stats`] (order
//! statistics over sampled distributions) and [`report`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitfusion;
pub mod booth;
pub mod laconic;
pub mod laconic_snap;
pub mod report;
pub mod scnn;
pub mod snap;
pub mod sparten;
pub mod sparten_mp;
pub mod stats;

/// Glob import of the commonly used items.
pub mod prelude {
    pub use crate::bitfusion::BitFusion;
    pub use crate::booth::booth_terms;
    pub use crate::laconic::{Laconic, LaconicLatency};
    pub use crate::laconic_snap::LaconicSnap;
    pub use crate::report::{Backend, BaselineLayerReport, BaselineNetworkReport};
    pub use crate::scnn::Scnn;
    pub use crate::snap::Snap;
    pub use crate::sparten::SparTen;
    pub use crate::sparten_mp::SparTenMp;
}
