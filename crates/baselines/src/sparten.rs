//! SparTen (MICRO 2019): dual-sided sparse compute units with bitmap
//! inner-joins.
//!
//! Each compute unit (CU) intersects the bitmasks of a weight vector and an
//! activation vector with priority encoding + prefix sums, extracting **one
//! effectual 8-bit pair per cycle** into a scalar MAC. Filters (output
//! channels) are assigned to CUs offline with a greedy balance on weight
//! non-zero counts ("w balancing" — activation statistics are unknowable in
//! advance because matches are discovered on the fly, §IV-E). Precision is
//! fixed at 8 bits: low-precision models run no faster, which is what
//! Ristretto exploits in Fig 17.

use crate::report::{Backend, BaselineLayerReport};
use hwmodel::{ComponentLib, EnergyCounter, SramMacro, TechNode};
use qnn::rng::SeededRng;
use qnn::workload::LayerStats;
use serde::{Deserialize, Serialize};

/// A SparTen accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparTen {
    /// Number of compute units.
    pub cus: usize,
    /// Bitmask chunk length each inner-join operates on.
    pub chunk: usize,
    /// Input buffer (KiB); the paper adds Ristretto-sized buffers for a
    /// fair memory hierarchy (§V-D).
    pub input_buf_kb: usize,
    /// Weight buffer (KiB).
    pub weight_buf_kb: usize,
    /// Output buffer (KiB).
    pub output_buf_kb: usize,
}

impl SparTen {
    /// The paper's comparison point (§V-D): 32 CUs, equal peak BitOps with
    /// the 32×16 Ristretto, Ristretto-sized buffers.
    pub fn paper_default() -> Self {
        Self {
            cus: 32,
            chunk: 128,
            input_buf_kb: 64,
            weight_buf_kb: 192,
            output_buf_kb: 96,
        }
    }

    /// Deterministic per-filter effectual-MAC estimates for a layer: the
    /// per-filter weight non-zero counts are jittered binomially around the
    /// measured density, then multiplied by the activation density and the
    /// number of output positions. Returns one entry per output channel.
    pub fn per_filter_matches(stats: &LayerStats) -> Vec<u64> {
        let layer = &stats.layer;
        let weights_per_filter = (layer.in_channels * layer.kernel * layer.kernel) as f64;
        let beta = stats.weight.value_density;
        let alpha = stats.activation.value_density;
        let positions = (layer.out_h() * layer.out_w()) as f64;
        let sigma = (weights_per_filter * beta * (1.0 - beta)).sqrt();
        let mut rng = SeededRng::new(seed_for(layer.name.as_str()));
        (0..layer.out_channels)
            .map(|_| {
                let nnz = (weights_per_filter * beta + sigma * rng.normal()).max(0.0);
                (nnz * alpha * positions).round() as u64
            })
            .collect()
    }

    /// Greedy "w balancing" (the paper notes SparTen balances by offline
    /// weight statistics): longest-processing-time assignment of filters to
    /// CUs by weight non-zero count; returns the per-CU *match* loads.
    pub fn balance_filters(&self, stats: &LayerStats) -> Vec<u64> {
        let matches = Self::per_filter_matches(stats);
        // SparTen sorts filters by weight nnz; matches are proportional to
        // weight nnz for a fixed activation density, so sorting by matches
        // models the same policy.
        let mut sorted: Vec<u64> = matches;
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut loads = vec![0u64; self.cus];
        for m in sorted {
            let min = loads.iter_mut().min().expect("cus > 0");
            *min += m;
        }
        loads
    }
}

impl Default for SparTen {
    fn default() -> Self {
        Self::paper_default()
    }
}

fn seed_for(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

impl Backend for SparTen {
    fn name(&self) -> &'static str {
        "SparTen"
    }

    fn area_mm2(&self) -> f64 {
        let lib = ComponentLib::n28();
        // A CU: inner-join + scalar 8b MAC + control; plus the permute
        // network and the added buffers.
        let cu = lib.inner_join_area + lib.scalar_mac8_area() + 0.002;
        self.cus as f64 * cu
            + lib.crossbar_area(self.cus, 32)
            + SramMacro::new(self.input_buf_kb << 10, 128).area_mm2()
            + SramMacro::new(self.weight_buf_kb << 10, 128).area_mm2()
            + SramMacro::new(self.output_buf_kb << 10, 128).area_mm2()
    }

    fn simulate_layer(&self, stats: &LayerStats) -> BaselineLayerReport {
        let lib = ComponentLib::n28();
        let tech = TechNode::N28;
        let layer = &stats.layer;
        let loads = self.balance_filters(stats);
        let matches: u64 = loads.iter().sum();
        // One extraction per cycle per CU; the slowest CU gates the layer.
        // Every bitmask chunk costs at least one cycle even when empty.
        let chunks_per_filter =
            (layer.in_channels * layer.kernel * layer.kernel).div_ceil(self.chunk) as u64;
        let positions = (layer.out_h() * layer.out_w()) as u64;
        let min_cycles_per_cu =
            chunks_per_filter * positions * (layer.out_channels as u64).div_ceil(self.cus as u64);
        let cycles = loads
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(min_cycles_per_cu);

        let a_bits = 8u64; // fixed-precision datapath
                           // Compressed (bitmap) traffic: non-zero bytes plus one mask bit per
                           // position, with broadcast reuse across CUs for activations.
        let act_bits_stored =
            stats.activation.nonzero_values as u64 * a_bits + layer.activation_count() as u64;
        let weight_bits_stored =
            stats.weight.nonzero_values as u64 * a_bits + layer.weight_count() as u64;
        let act_read_bits = act_bits_stored * (layer.out_channels as u64 / self.cus as u64).max(1);
        let weight_read_bits = weight_bits_stored * positions / self.chunk as u64;
        let out_write_bits = layer.output_count() as u64 * 24;
        let dram_bits = hwmodel::dram::tiled_traffic_bits(
            act_bits_stored,
            weight_bits_stored,
            (self.input_buf_kb as u64) << 13,
            (self.weight_buf_kb as u64) << 13,
        ) + (layer.output_count() as f64 * stats.activation.value_density) as u64
            * a_bits;

        let input = SramMacro::new(self.input_buf_kb << 10, 128);
        let weight = SramMacro::new(self.weight_buf_kb << 10, 128);
        let output = SramMacro::new(self.output_buf_kb << 10, 128);

        let mut counter = EnergyCounter::new();
        counter.compute(matches, lib.inner_join_energy + lib.scalar_mac8_energy());
        // Permute network on delivered outputs.
        counter.compute(
            layer.output_count() as u64,
            lib.crossbar_energy(self.cus, 32),
        );
        counter.buffer(act_read_bits, input.read_energy_pj(128) / 128.0);
        counter.buffer(weight_read_bits, weight.read_energy_pj(128) / 128.0);
        counter.buffer(out_write_bits, output.write_energy_pj(128) / 128.0);
        counter.dram_bits(dram_bits);
        counter.leakage(lib.leakage_pj(self.area_mm2(), cycles, tech.freq_mhz));

        BaselineLayerReport {
            name: layer.name.clone(),
            cycles,
            effectual_ops: matches,
            dram_bits,
            energy: counter.breakdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::layers::ConvLayer;
    use qnn::quant::BitWidth;
    use qnn::rng::SeededRng;
    use qnn::workload::{ActivationProfile, WeightProfile};

    fn stats(bits: BitWidth, prune: f64) -> LayerStats {
        let layer = ConvLayer::conv("t", 16, 64, 3, 1, 1, 14, 14).unwrap();
        let mut rng = SeededRng::new(1);
        LayerStats::generate(
            &layer,
            &WeightProfile::benchmark(bits).with_prune(prune),
            &ActivationProfile::new(bits),
            2,
            &mut rng,
        )
    }

    #[test]
    fn cycles_track_effectual_matches() {
        let s = stats(BitWidth::W8, 0.45);
        let sp = SparTen::paper_default();
        let r = sp.simulate_layer(&s);
        // Matches ≈ macs × α × β.
        let expected = s.layer.macs() as f64 * s.activation.value_density * s.weight.value_density;
        let ratio = r.effectual_ops as f64 / expected;
        assert!((0.8..1.2).contains(&ratio), "matches ratio {ratio}");
        assert!(r.cycles >= r.effectual_ops / sp.cus as u64);
    }

    #[test]
    fn sparser_models_run_faster() {
        let sp = SparTen::paper_default();
        let dense = sp.simulate_layer(&stats(BitWidth::W8, 0.2)).cycles;
        let sparse = sp.simulate_layer(&stats(BitWidth::W8, 0.8)).cycles;
        assert!(sparse < dense, "{sparse} vs {dense}");
    }

    #[test]
    fn precision_does_not_change_throughput() {
        // SparTen's datapath is fixed 8-bit: for identical sparsity the
        // cycle count is the same at any model precision. Compare per-match
        // cycles rather than absolute (sparsity differs across widths).
        let sp = SparTen::paper_default();
        let r8 = sp.simulate_layer(&stats(BitWidth::W8, 0.45));
        let r2 = sp.simulate_layer(&stats(BitWidth::W2, 0.45));
        let per_match8 = r8.cycles as f64 / r8.effectual_ops.max(1) as f64;
        let per_match2 = r2.cycles as f64 / r2.effectual_ops.max(1) as f64;
        assert!((per_match8 - per_match2).abs() / per_match8 < 0.5);
    }

    #[test]
    fn balancing_bounds_makespan() {
        let s = stats(BitWidth::W4, 0.45);
        let sp = SparTen::paper_default();
        let loads = sp.balance_filters(&s);
        assert_eq!(loads.len(), 32);
        let max = *loads.iter().max().unwrap();
        let mean = loads.iter().sum::<u64>() as f64 / 32.0;
        assert!(
            max as f64 <= mean * 1.5,
            "LPT keeps imbalance modest: {max} vs {mean}"
        );
    }

    #[test]
    fn per_filter_matches_deterministic() {
        let s = stats(BitWidth::W4, 0.45);
        assert_eq!(
            SparTen::per_filter_matches(&s),
            SparTen::per_filter_matches(&s)
        );
    }

    #[test]
    fn area_dominated_by_inner_joins() {
        let sp = SparTen::paper_default();
        let lib = ComponentLib::n28();
        let joins = sp.cus as f64 * lib.inner_join_area;
        assert!(joins / sp.area_mm2() > 0.3);
    }
}
