//! SNAP (JSSC 2020): associative-index-matching dual-sided sparse
//! accelerator (paper Table I), and the donor of the matching logic in the
//! §II-B2b "Laconic + SNAP" combination study.
//!
//! Each SNAP core pairs non-zero weights and activations with an
//! associative index matching (AIM) unit feeding a 2-D MAC array, followed
//! by a two-level partial-sum reduction. The matching throughput — how many
//! valid pairs AIM extracts per cycle — caps effective utilization; with
//! random sparse vectors the expected match count per comparison window
//! drops with density, idling the MACs.

use crate::report::{Backend, BaselineLayerReport};
use hwmodel::{ComponentLib, EnergyCounter, SramMacro, TechNode};
use qnn::workload::LayerStats;
use serde::{Deserialize, Serialize};

/// A SNAP accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Snap {
    /// Number of compute cores.
    pub cores: usize,
    /// MAC rows per core (weight side).
    pub rows: usize,
    /// MAC columns per core (activation side).
    pub cols: usize,
    /// AIM comparison window: how many (weight, activation) index pairs are
    /// compared associatively per cycle.
    pub window: usize,
    /// Input buffer (KiB).
    pub input_buf_kb: usize,
    /// Weight buffer (KiB).
    pub weight_buf_kb: usize,
    /// Output buffer (KiB).
    pub output_buf_kb: usize,
}

impl Snap {
    /// A configuration at the comparison scale: 4 cores of 4×16 MACs.
    pub fn paper_default() -> Self {
        Self {
            cores: 4,
            rows: 4,
            cols: 16,
            window: 16,
            input_buf_kb: 64,
            weight_buf_kb: 192,
            output_buf_kb: 96,
        }
    }

    /// MACs per cycle at full utilization.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        (self.cores * self.rows * self.cols) as u64
    }

    /// Fraction of the dense index space the AIM actually scans: operating
    /// on compressed vectors it skips positions where *both* operands are
    /// zero, leaving the union `α + β − α·β`.
    pub fn scan_fraction(&self, alpha: f64, beta: f64) -> f64 {
        (alpha + beta - alpha * beta).clamp(0.0, 1.0)
    }

    /// Index positions the AIMs can examine per cycle.
    pub fn scan_bandwidth(&self) -> u64 {
        (self.cores * self.rows * self.window) as u64
    }
}

impl Default for Snap {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl Backend for Snap {
    fn name(&self) -> &'static str {
        "SNAP"
    }

    fn area_mm2(&self) -> f64 {
        let lib = ComponentLib::n28();
        // Per core: 16-bit MAC array + AIM (comparator array, priced like
        // a bitmask inner-join scaled by the window) + reduction tree.
        let core = (self.rows * self.cols) as f64
            * (lib.multiplier_area(16) + lib.accumulator_area(24))
            + lib.inner_join_area * self.window as f64 / 128.0 * self.rows as f64
            + lib.crossbar_area(self.cols, 24);
        self.cores as f64 * core
            + SramMacro::new(self.input_buf_kb << 10, 128).area_mm2()
            + SramMacro::new(self.weight_buf_kb << 10, 128).area_mm2()
            + SramMacro::new(self.output_buf_kb << 10, 128).area_mm2()
    }

    fn simulate_layer(&self, stats: &LayerStats) -> BaselineLayerReport {
        let lib = ComponentLib::n28();
        let tech = TechNode::N28;
        let layer = &stats.layer;
        let alpha = stats.activation.value_density;
        let beta = stats.weight.value_density;
        let matches = (layer.macs() as f64 * alpha * beta) as u64;
        // Two bounds gate the layer: AIM index-scan bandwidth over the
        // compressed union, and MAC bandwidth over the matches.
        let scan_cycles = (layer.macs() as f64 * self.scan_fraction(alpha, beta)
            / self.scan_bandwidth() as f64)
            .ceil() as u64;
        let mac_cycles = matches.div_ceil(self.peak_macs_per_cycle());
        let cycles = scan_cycles.max(mac_cycles).max(1);

        // 16-bit datapath with CSR-style compressed operands.
        let data_bits = 16u64;
        let act_stored = stats.activation.nonzero_values as u64 * (data_bits + 8);
        let weight_stored = stats.weight.nonzero_values as u64 * (data_bits + 8);
        let dram_bits = hwmodel::dram::tiled_traffic_bits(
            act_stored,
            weight_stored,
            (self.input_buf_kb as u64) << 13,
            (self.weight_buf_kb as u64) << 13,
        ) + (layer.output_count() as f64 * alpha) as u64 * data_bits;

        let input = SramMacro::new(self.input_buf_kb << 10, 128);
        let weight = SramMacro::new(self.weight_buf_kb << 10, 128);
        let output = SramMacro::new(self.output_buf_kb << 10, 128);
        let mut counter = EnergyCounter::new();
        counter.compute(
            matches,
            lib.multiplier_energy(16) + lib.accumulator_energy(24),
        );
        // AIM comparisons fire every cycle on every window slot.
        counter.compute(
            cycles * (self.cores * self.rows) as u64,
            lib.inner_join_energy * self.window as f64 / 128.0,
        );
        counter.buffer(act_stored, input.read_energy_pj(128) / 128.0);
        counter.buffer(weight_stored, weight.read_energy_pj(128) / 128.0);
        counter.buffer(
            layer.output_count() as u64 * 24,
            output.write_energy_pj(128) / 128.0,
        );
        counter.dram_bits(dram_bits);
        counter.leakage(lib.leakage_pj(self.area_mm2(), cycles, tech.freq_mhz));

        BaselineLayerReport {
            name: layer.name.clone(),
            cycles,
            effectual_ops: matches,
            dram_bits,
            energy: counter.breakdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::layers::ConvLayer;
    use qnn::quant::BitWidth;
    use qnn::rng::SeededRng;
    use qnn::workload::{ActivationProfile, WeightProfile};

    fn stats(prune: f64) -> LayerStats {
        let layer = ConvLayer::conv("t", 16, 32, 3, 1, 1, 14, 14).unwrap();
        let mut rng = SeededRng::new(1);
        LayerStats::generate(
            &layer,
            &WeightProfile::benchmark(BitWidth::W8).with_prune(prune),
            &ActivationProfile::new(BitWidth::W8),
            2,
            &mut rng,
        )
    }

    #[test]
    fn scan_fraction_shrinks_with_sparsity() {
        let snap = Snap::paper_default();
        let dense = snap.scan_fraction(0.9, 0.9);
        let sparse = snap.scan_fraction(0.2, 0.2);
        assert!(dense > sparse, "{dense} vs {sparse}");
        assert!((0.0..=1.0).contains(&sparse));
        // Matching is the bottleneck relative to raw MAC bandwidth: the
        // scan term dominates at moderate sparsity.
        assert!(snap.scan_bandwidth() < snap.peak_macs_per_cycle() * 2);
    }

    #[test]
    fn sparse_models_still_run_faster_overall() {
        // Fewer matches outweigh the utilization drop.
        let snap = Snap::paper_default();
        let dense = snap.simulate_layer(&stats(0.1));
        let sparse = snap.simulate_layer(&stats(0.8));
        assert!(sparse.cycles < dense.cycles);
    }

    #[test]
    fn cycles_never_beat_peak_bandwidth() {
        let snap = Snap::paper_default();
        let r = snap.simulate_layer(&stats(0.45));
        assert!(r.cycles >= r.effectual_ops / snap.peak_macs_per_cycle());
    }

    #[test]
    fn area_plausible() {
        let a = Snap::paper_default().area_mm2();
        assert!((0.4..4.0).contains(&a), "area {a}");
    }
}
