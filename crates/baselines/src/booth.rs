//! Booth / signed-digit term counting for bit-serial accelerators.
//!
//! Laconic represents operands as sequences of *effectual terms* (non-zero
//! signed digits with their shift offsets). The canonical non-adjacent form
//! (NAF) minimizes the term count, which is what the booth encoders at
//! Laconic's array boundary produce; a pair's bit-serial latency is
//! `#terms_a × #terms_w`.

/// Number of non-zero digits in the non-adjacent form of `v`.
///
/// ```
/// use baselines::booth::booth_terms;
/// assert_eq!(booth_terms(0), 0);
/// assert_eq!(booth_terms(1), 1);
/// // 7 = 8 - 1: two terms instead of three bits.
/// assert_eq!(booth_terms(7), 2);
/// assert_eq!(booth_terms(-7), 2);
/// // 0b01010101 has four isolated ones: four terms.
/// assert_eq!(booth_terms(0b0101_0101), 4);
/// ```
pub fn booth_terms(v: i32) -> u32 {
    let mut n = (v as i64).unsigned_abs();
    let mut count = 0u32;
    while n != 0 {
        if n & 1 == 1 {
            count += 1;
            // NAF digit: choose ±1 so the remaining value is divisible by 4.
            if n & 2 == 2 {
                n += 1; // digit -1
            } else {
                n -= 1; // digit +1
            }
        }
        n >>= 1;
    }
    count
}

/// The bit-serial latency of one weight-activation pair in Laconic:
/// `#terms_a × #terms_w` (zero for any ineffectual pair).
pub fn pair_latency(a: i32, w: i32) -> u32 {
    booth_terms(a) * booth_terms(w)
}

/// Histogram of term counts over a sample of values (index = #terms).
pub fn term_histogram(values: &[i32]) -> Vec<f64> {
    let mut hist = vec![0f64; 1];
    for &v in values {
        let t = booth_terms(v) as usize;
        if t >= hist.len() {
            hist.resize(t + 1, 0.0);
        }
        hist[t] += 1.0;
    }
    let total: f64 = hist.iter().sum();
    if total > 0.0 {
        for h in &mut hist {
            *h /= total;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naf_is_never_worse_than_popcount() {
        for v in -255i32..=255 {
            assert!(booth_terms(v) <= v.unsigned_abs().count_ones(), "v = {v}");
        }
    }

    #[test]
    fn naf_reconstruction_digit_count() {
        // Spot-check known NAF term counts.
        assert_eq!(booth_terms(2), 1);
        assert_eq!(booth_terms(3), 2); // 4 - 1
        assert_eq!(booth_terms(15), 2); // 16 - 1
        assert_eq!(booth_terms(85), 4);
        assert_eq!(booth_terms(255), 2); // 256 - 1
        assert_eq!(booth_terms(-255), 2);
    }

    #[test]
    fn eight_bit_values_need_at_most_five_terms() {
        for v in -255i32..=255 {
            assert!(booth_terms(v) <= 5, "v = {v} -> {}", booth_terms(v));
        }
    }

    #[test]
    fn pair_latency_zero_for_ineffectual() {
        assert_eq!(pair_latency(0, 99), 0);
        assert_eq!(pair_latency(99, 0), 0);
        assert_eq!(pair_latency(3, 3), 4);
    }

    #[test]
    fn histogram_is_a_distribution() {
        let h = term_histogram(&[0, 1, 3, 7, 15, -15, 0, 255]);
        let sum: f64 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((h[0] - 0.25).abs() < 1e-12); // two zeros out of eight
        assert!(term_histogram(&[]).iter().sum::<f64>() == 0.0);
    }
}
