//! Order statistics over sampled discrete distributions.
//!
//! The Laconic and SparTen-mp models need expectations of the *maximum* of
//! `K` independent draws (slowest lane in a PE, most-loaded inner-join
//! segment). Given a pmf over small non-negative integers these are exact:
//! `E[max of K] = Σ_t (1 − F(t)^K)`.

/// Normalizes a histogram into a pmf. Returns an all-zero vector if the
/// histogram is empty or sums to zero.
pub fn normalize(hist: &[f64]) -> Vec<f64> {
    let total: f64 = hist.iter().sum();
    if total <= 0.0 {
        return vec![0.0; hist.len().max(1)];
    }
    hist.iter().map(|&h| h / total).collect()
}

/// Expectation of a pmf over `0..len`.
pub fn expectation(pmf: &[f64]) -> f64 {
    pmf.iter().enumerate().map(|(v, &p)| v as f64 * p).sum()
}

/// Expectation of the maximum of `k` independent draws from `pmf`
/// (`E[max] = Σ_{t≥0} (1 − F(t)^k)` over the support).
pub fn expected_max(pmf: &[f64], k: u64) -> f64 {
    if k == 0 || pmf.is_empty() {
        return 0.0;
    }
    let mut cdf = 0.0;
    let mut e = 0.0;
    // E[max] = Σ_{t=0}^{T-1} P(max > t) = Σ (1 - F(t)^k).
    for &p in &pmf[..pmf.len() - 1] {
        cdf += p;
        e += 1.0 - cdf.powf(k as f64);
    }
    // Values above the last support point don't exist; the loop covers
    // thresholds below the maximum support value.
    e
}

/// Product distribution of two independent pmfs: `Z = X · Y`.
pub fn product_pmf(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return vec![1.0];
    }
    let max = (a.len() - 1) * (b.len() - 1);
    let mut out = vec![0.0; max + 1];
    for (i, &pa) in a.iter().enumerate() {
        if pa == 0.0 {
            continue;
        }
        for (j, &pb) in b.iter().enumerate() {
            if pb == 0.0 {
                continue;
            }
            out[i * j] += pa * pb;
        }
    }
    out
}

/// Binomial pmf with `n` trials and probability `p` (exact, for the modest
/// `n` the segment models need).
pub fn binomial_pmf(n: u64, p: f64) -> Vec<f64> {
    let p = p.clamp(0.0, 1.0);
    let mut pmf = vec![0.0; n as usize + 1];
    // Iterative: P(0) = (1-p)^n; P(k+1) = P(k) * (n-k)/(k+1) * p/(1-p).
    if (1.0 - p).abs() < 1e-15 {
        pmf[n as usize] = 1.0;
        return pmf;
    }
    let mut cur = (1.0 - p).powf(n as f64);
    let ratio = p / (1.0 - p);
    for k in 0..=n {
        pmf[k as usize] = cur;
        if k < n {
            cur *= (n - k) as f64 / (k + 1) as f64 * ratio;
        }
    }
    pmf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expectation_of_uniform() {
        let pmf = vec![0.25; 4];
        assert!((expectation(&pmf) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn expected_max_of_one_draw_is_the_mean() {
        let pmf = normalize(&[1.0, 2.0, 3.0]);
        assert!((expected_max(&pmf, 1) - expectation(&pmf)).abs() < 1e-12);
    }

    #[test]
    fn expected_max_grows_with_k_and_saturates() {
        let pmf = normalize(&[1.0, 1.0, 1.0, 1.0]);
        let e1 = expected_max(&pmf, 1);
        let e4 = expected_max(&pmf, 4);
        let e1000 = expected_max(&pmf, 1000);
        assert!(e1 < e4 && e4 < e1000);
        assert!(e1000 <= 3.0 + 1e-9);
        assert!(e1000 > 2.99);
    }

    #[test]
    fn expected_max_degenerate() {
        assert_eq!(expected_max(&[1.0], 10), 0.0); // constant zero
        assert_eq!(expected_max(&[], 10), 0.0);
        assert_eq!(expected_max(&[0.5, 0.5], 0), 0.0);
    }

    #[test]
    fn product_pmf_matches_manual() {
        // X in {0,1} each 0.5; Y in {0,2}: wait, pmf index IS the value.
        let a = vec![0.5, 0.5]; // 0 or 1
        let b = vec![0.0, 0.0, 1.0]; // always 2
        let p = product_pmf(&a, &b);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[2] - 0.5).abs() < 1e-12);
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn binomial_sums_to_one_and_has_np_mean() {
        for (n, p) in [(16u64, 0.3), (32, 0.05), (8, 0.9)] {
            let pmf = binomial_pmf(n, p);
            let total: f64 = pmf.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!((expectation(&pmf) - n as f64 * p).abs() < 1e-9);
        }
    }

    #[test]
    fn binomial_edge_probabilities() {
        let zero = binomial_pmf(8, 0.0);
        assert!((zero[0] - 1.0).abs() < 1e-12);
        let one = binomial_pmf(8, 1.0);
        assert!((one[8] - 1.0).abs() < 1e-12);
    }
}
