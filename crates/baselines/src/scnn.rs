//! SCNN (ISCA 2017): the outer-product dual-sided sparse CNN accelerator
//! of the paper's Table I.
//!
//! Each PE holds an F×I multiplier array computing the Cartesian product of
//! `F` non-zero weights and `I` non-zero activations per cycle; products
//! scatter through a crossbar into accumulator banks, where bank conflicts
//! stall the array. SCNN pioneered the planar-tiled outer-product dataflow
//! Ristretto's *value-level* stream intersection generalizes to the atom
//! level; like Ristretto it computes stride-1 coordinates only (the paper
//! cites SCNN for that compromise in §IV-C3).

use crate::report::{Backend, BaselineLayerReport};
use hwmodel::{ComponentLib, EnergyCounter, SramMacro, TechNode};
use qnn::workload::LayerStats;
use serde::{Deserialize, Serialize};

/// An SCNN accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scnn {
    /// Number of PEs (the original is an 8×8 grid).
    pub pes: usize,
    /// Weight-side operand vector length per cycle (`F`).
    pub f: usize,
    /// Activation-side operand vector length per cycle (`I`).
    pub i: usize,
    /// Accumulator banks per PE (products scatter across these).
    pub banks: usize,
    /// Input buffer (KiB).
    pub input_buf_kb: usize,
    /// Weight buffer (KiB).
    pub weight_buf_kb: usize,
    /// Output buffer (KiB).
    pub output_buf_kb: usize,
}

impl Scnn {
    /// The comparison-scale configuration: 4×4 multiplier arrays and 32
    /// accumulator banks as published, but 2 PEs so the peak value-MAC
    /// rate (32/cycle) matches the 32-CU SparTen comparison point; buffers
    /// match the shared comparison sizes. (The published chip is 64 PEs —
    /// scale `pes` up to study it at full size.)
    pub fn paper_default() -> Self {
        Self {
            pes: 2,
            f: 4,
            i: 4,
            banks: 32,
            input_buf_kb: 64,
            weight_buf_kb: 192,
            output_buf_kb: 96,
        }
    }

    /// Peak multiplies per cycle.
    pub fn peak_mults_per_cycle(&self) -> u64 {
        (self.pes * self.f * self.i) as u64
    }

    /// Expected crossbar stall factor: with `f·i` products scattering into
    /// `banks` accumulators per cycle, the busiest bank serializes its
    /// collisions (balls-into-bins; the SCNN paper measures ~10–20%
    /// overhead at 4×4/32).
    pub fn bank_conflict_factor(&self) -> f64 {
        let products = (self.f * self.i) as f64;
        let banks = self.banks as f64;
        // Expected maximum bin load for `products` uniform balls into
        // `banks` bins, normalized by the ideal products/banks... For the
        // sparse regime products < banks, approximate the busiest bank via
        // 1 + (products - 1) / banks extra serialization.
        1.0 + (products - 1.0) / banks
    }
}

impl Default for Scnn {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl Backend for Scnn {
    fn name(&self) -> &'static str {
        "SCNN"
    }

    fn area_mm2(&self) -> f64 {
        let lib = ComponentLib::n28();
        // Per PE: F*I 16-bit multipliers + scatter crossbar + banked
        // accumulators (SCNN is a 16-bit design, Table I).
        let pe = (self.f * self.i) as f64 * lib.multiplier_area(16)
            + lib.crossbar_area(self.banks, 24)
            + self.banks as f64 * lib.accumulator_area(24);
        self.pes as f64 * pe
            + SramMacro::new(self.input_buf_kb << 10, 128).area_mm2()
            + SramMacro::new(self.weight_buf_kb << 10, 128).area_mm2()
            + SramMacro::new(self.output_buf_kb << 10, 128).area_mm2()
    }

    fn simulate_layer(&self, stats: &LayerStats) -> BaselineLayerReport {
        let lib = ComponentLib::n28();
        let tech = TechNode::N28;
        let layer = &stats.layer;
        // Effectual multiplies: non-zero weight × non-zero activation pairs.
        // SCNN computes stride-1 coordinates (like Ristretto), so strided
        // layers pay the full cartesian product before discarding.
        let matches = (layer.macs() as f64
            * stats.activation.value_density
            * stats.weight.value_density) as u64;
        let ideal = matches.div_ceil(self.peak_mults_per_cycle());
        let cycles = ((ideal as f64) * self.bank_conflict_factor()).ceil() as u64;

        // 16-bit datapath regardless of model precision (Table I).
        let data_bits = 16u64;
        let act_stored = stats.activation.nonzero_values as u64 * data_bits
            + layer.activation_count() as u64 / 8; // run-length index overhead
        let weight_stored =
            stats.weight.nonzero_values as u64 * data_bits + layer.weight_count() as u64 / 8;
        let dram_bits = hwmodel::dram::tiled_traffic_bits(
            act_stored,
            weight_stored,
            (self.input_buf_kb as u64) << 13,
            (self.weight_buf_kb as u64) << 13,
        ) + (layer.output_count() as f64 * stats.activation.value_density) as u64
            * data_bits;

        let input = SramMacro::new(self.input_buf_kb << 10, 128);
        let weight = SramMacro::new(self.weight_buf_kb << 10, 128);
        let output = SramMacro::new(self.output_buf_kb << 10, 128);
        let mut counter = EnergyCounter::new();
        counter.compute(
            matches,
            lib.multiplier_energy(16) + lib.accumulator_energy(24),
        );
        counter.compute(matches, lib.crossbar_energy(self.banks, 24));
        counter.buffer(act_stored, input.read_energy_pj(128) / 128.0);
        counter.buffer(
            weight_stored * (layer.in_h as u64 / 8).max(1),
            weight.read_energy_pj(128) / 128.0,
        );
        counter.buffer(
            layer.output_count() as u64 * 24,
            output.write_energy_pj(128) / 128.0,
        );
        counter.dram_bits(dram_bits);
        counter.leakage(lib.leakage_pj(self.area_mm2(), cycles, tech.freq_mhz));

        BaselineLayerReport {
            name: layer.name.clone(),
            cycles,
            effectual_ops: matches,
            dram_bits,
            energy: counter.breakdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::layers::ConvLayer;
    use qnn::quant::BitWidth;
    use qnn::rng::SeededRng;
    use qnn::workload::{ActivationProfile, WeightProfile};

    fn stats(prune: f64) -> LayerStats {
        let layer = ConvLayer::conv("t", 16, 32, 3, 1, 1, 14, 14).unwrap();
        let mut rng = SeededRng::new(1);
        LayerStats::generate(
            &layer,
            &WeightProfile::benchmark(BitWidth::W8).with_prune(prune),
            &ActivationProfile::new(BitWidth::W8),
            2,
            &mut rng,
        )
    }

    #[test]
    fn exploits_dual_sided_value_sparsity() {
        let scnn = Scnn::paper_default();
        let dense = scnn.simulate_layer(&stats(0.1));
        let sparse = scnn.simulate_layer(&stats(0.8));
        assert!(sparse.cycles < dense.cycles);
        assert!(sparse.effectual_ops < dense.effectual_ops);
    }

    #[test]
    fn bank_conflicts_slow_the_array() {
        let scnn = Scnn::paper_default();
        assert!(scnn.bank_conflict_factor() > 1.0);
        let r = scnn.simulate_layer(&stats(0.45));
        assert!(r.cycles as f64 >= r.effectual_ops as f64 / scnn.peak_mults_per_cycle() as f64);
    }

    #[test]
    fn insensitive_to_model_precision() {
        // 16-bit datapath: cycles depend only on sparsity, not on bits.
        let scnn = Scnn::paper_default();
        let layer = ConvLayer::conv("t", 16, 32, 3, 1, 1, 14, 14).unwrap();
        let mut rng = SeededRng::new(2);
        let s8 = LayerStats::generate(
            &layer,
            &WeightProfile::benchmark(BitWidth::W8),
            &ActivationProfile::new(BitWidth::W8),
            2,
            &mut rng,
        );
        let per_op_8 =
            scnn.simulate_layer(&s8).cycles as f64 / scnn.simulate_layer(&s8).effectual_ops as f64;
        assert!(per_op_8 > 0.0);
    }

    #[test]
    fn area_plausible() {
        let a = Scnn::paper_default().area_mm2();
        assert!((0.4..3.0).contains(&a), "area {a}");
        // Full-size chip for reference.
        let full = Scnn {
            pes: 64,
            ..Scnn::paper_default()
        }
        .area_mm2();
        assert!(full > a * 2.0);
    }
}
