//! The paper's second naive combination (§II-B2b, Fig 3): Laconic with
//! SNAP's associative index matching bolted into every PE, operating on
//! CSR-compressed tensors.
//!
//! Zero-value *movement* disappears (compressed buffers/DRAM), but the
//! paper's two predicted problems are modelled here:
//!
//! 1. **area overhead** — an AIM per PE plus booth encoders moved from the
//!    array boundary into every PE for local encoding;
//! 2. **PE underutilization** — each PE's 16 bit-serial lanes only fill
//!    when AIM finds 16 matched non-zero pairs in its window; at high value
//!    sparsity most lanes idle, so the *cycle count barely improves* over
//!    dense Laconic while the area grows.

use crate::booth::term_histogram;
use crate::laconic::Laconic;
use crate::report::{Backend, BaselineLayerReport};
use crate::stats::{expected_max, product_pmf};
use hwmodel::{ComponentLib, EnergyCounter, SramMacro, TechNode};
use qnn::workload::LayerStats;
use serde::{Deserialize, Serialize};

/// A Laconic+SNAP combination instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaconicSnap {
    /// The underlying Laconic mesh.
    pub base: Laconic,
    /// AIM comparison window per PE (positions examined per cycle).
    pub window: usize,
}

impl LaconicSnap {
    /// The §II-B2b construction over the paper's Laconic configuration.
    pub fn paper_default() -> Self {
        Self {
            base: Laconic::paper_default(),
            window: 16,
        }
    }
}

impl Default for LaconicSnap {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl Backend for LaconicSnap {
    fn name(&self) -> &'static str {
        "Laconic+SNAP"
    }

    fn area_mm2(&self) -> f64 {
        let lib = ComponentLib::n28();
        let pes = (self.base.pe_rows * self.base.pe_cols) as f64;
        // Base Laconic area plus, per PE: an AIM (window-scaled inner-join)
        // and a local booth encoder pair (the boundary encoders move into
        // the PEs, §II-B2b).
        self.base.area_mm2()
            + pes
                * (lib.inner_join_area * self.window as f64 / 128.0 + 2.0 * lib.booth_encoder_area)
    }

    fn simulate_layer(&self, stats: &LayerStats) -> BaselineLayerReport {
        let lib = ComponentLib::n28();
        let tech = TechNode::N28;
        let layer = &stats.layer;
        let alpha = stats.activation.value_density;
        let beta = stats.weight.value_density;

        // Window sweep count is unchanged from dense Laconic (the PEs still
        // walk the full index space); each window's latency is the slowest
        // *matched* pair, and lanes idle when matches < lanes.
        let total_lanes = self.base.total_lanes() as u64;
        let windows = layer.macs().div_ceil(total_lanes);
        let nz_a: Vec<i32> = stats
            .activation_sample
            .iter()
            .copied()
            .filter(|&v| v != 0)
            .collect();
        let nz_w: Vec<i32> = stats
            .weight_sample
            .iter()
            .copied()
            .filter(|&v| v != 0)
            .collect();
        let tp = product_pmf(&term_histogram(&nz_a), &term_histogram(&nz_w));
        let active_pairs = ((total_lanes as f64) * alpha * beta).max(1.0) as u64;
        let per_window = expected_max(&tp, active_pairs).max(1.0);
        let cycles = (windows as f64 * per_window).ceil() as u64;

        let matches = (layer.macs() as f64 * alpha * beta) as u64;
        let a_bits = stats.a_bits.bits() as u64;
        let w_bits = stats.w_bits.bits() as u64;
        // CSR-compressed traffic (the one thing this combination fixes).
        let act_stored = stats.activation.nonzero_values as u64 * (a_bits + 8);
        let weight_stored = stats.weight.nonzero_values as u64 * (w_bits + 8);
        let dram_bits = hwmodel::dram::tiled_traffic_bits(
            act_stored,
            weight_stored,
            (self.base.input_buf_kb as u64) << 13,
            (self.base.weight_buf_kb as u64) << 13,
        ) + (layer.output_count() as f64 * alpha) as u64 * a_bits;

        let input = SramMacro::new(self.base.input_buf_kb << 10, 128);
        let weight = SramMacro::new(self.base.weight_buf_kb << 10, 128);
        let output = SramMacro::new(self.base.output_buf_kb << 10, 128);
        let mut counter = EnergyCounter::new();
        // Term-pair work on matched pairs only.
        let mean_tp = crate::stats::expectation(&tp);
        counter.compute(
            (matches as f64 * mean_tp) as u64,
            lib.bit_serial_lane_energy(),
        );
        // Per-PE AIM fires every cycle; local booth encoders per match.
        let pes = (self.base.pe_rows * self.base.pe_cols) as u64;
        counter.compute(
            cycles * pes,
            lib.inner_join_energy * self.window as f64 / 128.0,
        );
        counter.compute(2 * matches, lib.booth_encoder_energy);
        counter.buffer(act_stored, input.read_energy_pj(128) / 128.0);
        counter.buffer(weight_stored, weight.read_energy_pj(128) / 128.0);
        counter.buffer(
            layer.output_count() as u64 * 24,
            output.write_energy_pj(128) / 128.0,
        );
        counter.dram_bits(dram_bits);
        counter.leakage(lib.leakage_pj(self.area_mm2(), cycles, tech.freq_mhz));

        BaselineLayerReport {
            name: layer.name.clone(),
            cycles,
            effectual_ops: matches,
            dram_bits,
            energy: counter.breakdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::layers::ConvLayer;
    use qnn::quant::BitWidth;
    use qnn::rng::SeededRng;
    use qnn::workload::{ActivationProfile, WeightProfile};

    fn stats(prune: f64) -> LayerStats {
        let layer = ConvLayer::conv("t", 16, 32, 3, 1, 1, 14, 14).unwrap();
        let mut rng = SeededRng::new(1);
        LayerStats::generate(
            &layer,
            &WeightProfile::benchmark(BitWidth::W8).with_prune(prune),
            &ActivationProfile::new(BitWidth::W8),
            2,
            &mut rng,
        )
    }

    #[test]
    fn pays_area_for_matching() {
        let combo = LaconicSnap::paper_default();
        assert!(combo.area_mm2() > combo.base.area_mm2() * 1.05);
    }

    #[test]
    fn cycles_barely_beat_dense_laconic() {
        // The paper's claim: the combination does not fix Laconic's value-
        // sparsity insensitivity — cycle counts stay within ~2x of dense
        // Laconic even on a well-pruned model.
        let s = stats(0.7);
        let dense = Laconic::paper_default().simulate_layer(&s).cycles;
        let combo = LaconicSnap::paper_default().simulate_layer(&s).cycles;
        assert!(
            combo <= dense,
            "matching should not slow it down: {combo} vs {dense}"
        );
        assert!(
            combo * 2 >= dense,
            "but gains stay modest: {combo} vs {dense}"
        );
    }

    #[test]
    fn compression_does_cut_traffic() {
        let s = stats(0.7);
        let dense = Laconic::paper_default().simulate_layer(&s).dram_bits;
        let combo = LaconicSnap::paper_default().simulate_layer(&s).dram_bits;
        assert!(combo < dense, "{combo} vs {dense}");
    }

    #[test]
    fn area_normalized_perf_worse_than_plain_laconic_when_dense() {
        // At low sparsity the extra matching area buys nothing.
        let s = stats(0.05);
        let lac = Laconic::paper_default();
        let combo = LaconicSnap::paper_default();
        let perf_lac = 1.0 / (lac.simulate_layer(&s).cycles as f64 * lac.area_mm2());
        let perf_combo = 1.0 / (combo.simulate_layer(&s).cycles as f64 * combo.area_mm2());
        assert!(perf_combo < perf_lac, "{perf_combo} vs {perf_lac}");
    }
}
