//! Bit Fusion (ISCA 2018): a weight-stationary 2-D systolic array of
//! spatially decomposable *fusion units*.
//!
//! Each fusion unit contains 16 2-bit BitBricks and computes one 8-bit,
//! four 4-bit or sixteen 2-bit multiplications per cycle. The dataflow is
//! dense: zero values are neither skipped nor compressed, so cycles scale
//! with the full MAC count divided by the precision-dependent throughput.
//! This matches the open-source simulator's first-order behaviour the paper
//! references.

use crate::report::{Backend, BaselineLayerReport};
use hwmodel::{ComponentLib, EnergyCounter, SramMacro, TechNode};
use qnn::workload::LayerStats;
use serde::{Deserialize, Serialize};

/// A Bit Fusion accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitFusion {
    /// Systolic array rows.
    pub rows: usize,
    /// Systolic array columns.
    pub cols: usize,
    /// Input buffer (KiB).
    pub input_buf_kb: usize,
    /// Weight buffer (KiB).
    pub weight_buf_kb: usize,
    /// Output buffer (KiB).
    pub output_buf_kb: usize,
}

impl BitFusion {
    /// The paper's comparison point: an 8×8 array (64 fusion units = 1024
    /// 2-bit multipliers) with Ristretto-sized buffers (§V-B).
    pub fn paper_default() -> Self {
        Self {
            rows: 8,
            cols: 8,
            input_buf_kb: 64,
            weight_buf_kb: 192,
            output_buf_kb: 96,
        }
    }

    /// Number of fusion units.
    pub fn fusion_units(&self) -> usize {
        self.rows * self.cols
    }

    /// Spatial decomposition factor for a precision: how many operand
    /// slices a fusion unit splits into per side (8b→4, 4b→2, 2b→1; the
    /// architecture rounds odd widths up).
    pub fn spatial_slices(bits: u8) -> u64 {
        match bits {
            0..=2 => 1,
            3..=4 => 2,
            _ => 4,
        }
    }

    /// Multiplications per fusion unit per cycle at the given precisions.
    pub fn mults_per_cycle(w_bits: u8, a_bits: u8) -> u64 {
        16 / (Self::spatial_slices(w_bits) * Self::spatial_slices(a_bits))
    }
}

impl Default for BitFusion {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl Backend for BitFusion {
    fn name(&self) -> &'static str {
        "Bit Fusion"
    }

    fn area_mm2(&self) -> f64 {
        let lib = ComponentLib::n28();
        self.fusion_units() as f64 * lib.fusion_unit_area()
            + SramMacro::new(self.input_buf_kb << 10, 128).area_mm2()
            + SramMacro::new(self.weight_buf_kb << 10, 128).area_mm2()
            + SramMacro::new(self.output_buf_kb << 10, 128).area_mm2()
            + 0.03 // systolic interconnect + control
    }

    fn simulate_layer(&self, stats: &LayerStats) -> BaselineLayerReport {
        let lib = ComponentLib::n28();
        let tech = TechNode::N28;
        let layer = &stats.layer;
        let macs = layer.macs();
        let per_fu = Self::mults_per_cycle(stats.w_bits.bits(), stats.a_bits.bits());
        let throughput = self.fusion_units() as u64 * per_fu;

        // Dense compute cycles plus systolic fill per weight-tile pass.
        let compute = macs.div_ceil(throughput);
        let passes = (layer.weight_count() as u64).div_ceil(self.fusion_units() as u64);
        let fill = (self.rows + self.cols) as u64 * passes.min(compute / 16 + 1);
        let cycles = compute + fill;

        let a_bits = stats.a_bits.bits() as u64;
        let w_bits = stats.w_bits.bits() as u64;
        // Dense buffer traffic with systolic reuse: activations shared
        // along columns, weights along rows, partial sums accumulated
        // in-array.
        let act_read_bits = macs * a_bits / self.cols as u64;
        let weight_read_bits = macs * w_bits / self.rows as u64;
        let out_write_bits = layer.output_count() as u64 * 24;
        // Dense DRAM traffic with loop-tiling re-fetch when neither
        // operand fits on chip.
        let dram_bits = hwmodel::dram::tiled_traffic_bits(
            layer.activation_count() as u64 * a_bits,
            layer.weight_count() as u64 * w_bits,
            (self.input_buf_kb as u64) << 13,
            (self.weight_buf_kb as u64) << 13,
        ) + layer.output_count() as u64 * a_bits;

        let input = SramMacro::new(self.input_buf_kb << 10, 128);
        let weight = SramMacro::new(self.weight_buf_kb << 10, 128);
        let output = SramMacro::new(self.output_buf_kb << 10, 128);

        let mut counter = EnergyCounter::new();
        // A fusion unit burns its full energy each active cycle regardless
        // of how many of its products are useful.
        counter.compute(macs / per_fu.max(1), lib.fusion_unit_energy());
        counter.buffer(act_read_bits, input.read_energy_pj(128) / 128.0);
        counter.buffer(weight_read_bits, weight.read_energy_pj(128) / 128.0);
        counter.buffer(out_write_bits, output.write_energy_pj(128) / 128.0);
        counter.dram_bits(dram_bits);
        counter.leakage(lib.leakage_pj(self.area_mm2(), cycles, tech.freq_mhz));

        BaselineLayerReport {
            name: layer.name.clone(),
            cycles,
            effectual_ops: macs,
            dram_bits,
            energy: counter.breakdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::layers::ConvLayer;
    use qnn::quant::BitWidth;
    use qnn::rng::SeededRng;
    use qnn::workload::{ActivationProfile, LayerStats, WeightProfile};

    fn stats(bits: BitWidth) -> LayerStats {
        let layer = ConvLayer::conv("t", 16, 32, 3, 1, 1, 14, 14).unwrap();
        let mut rng = SeededRng::new(1);
        LayerStats::generate(
            &layer,
            &WeightProfile::benchmark(bits),
            &ActivationProfile::new(bits),
            2,
            &mut rng,
        )
    }

    #[test]
    fn throughput_scales_with_precision() {
        assert_eq!(BitFusion::mults_per_cycle(8, 8), 1);
        assert_eq!(BitFusion::mults_per_cycle(4, 4), 4);
        assert_eq!(BitFusion::mults_per_cycle(2, 2), 16);
        assert_eq!(BitFusion::mults_per_cycle(2, 8), 4);
        assert_eq!(BitFusion::mults_per_cycle(4, 2), 8);
    }

    #[test]
    fn cycles_insensitive_to_sparsity() {
        // Bit Fusion is dense: same layer at same precision costs the same
        // regardless of sparsity, so the effectual op count equals MACs.
        let s = stats(BitWidth::W8);
        let bf = BitFusion::paper_default();
        let r = bf.simulate_layer(&s);
        assert_eq!(r.effectual_ops, s.layer.macs());
        assert!(r.cycles >= s.layer.macs() / 64);
    }

    #[test]
    fn lower_precision_is_faster() {
        let bf = BitFusion::paper_default();
        let c8 = bf.simulate_layer(&stats(BitWidth::W8)).cycles;
        let c4 = bf.simulate_layer(&stats(BitWidth::W4)).cycles;
        let c2 = bf.simulate_layer(&stats(BitWidth::W2)).cycles;
        assert!(c8 > c4 && c4 > c2, "{c8} {c4} {c2}");
        // Near-ideal 4x per precision step.
        let r = c8 as f64 / c4 as f64;
        assert!((3.0..4.5).contains(&r), "8b/4b ratio {r}");
    }

    #[test]
    fn area_dominated_by_array_plus_buffers() {
        let bf = BitFusion::paper_default();
        let a = bf.area_mm2();
        assert!((0.3..3.0).contains(&a), "area {a}");
    }

    #[test]
    fn network_report_has_all_layers() {
        use crate::report::Backend as _;
        use qnn::models::NetworkId;
        use qnn::workload::{NetworkStats, PrecisionPolicy};
        let net = NetworkStats::generate(
            NetworkId::AlexNet,
            PrecisionPolicy::Uniform(BitWidth::W4),
            2,
            3,
        );
        let r = BitFusion::paper_default().simulate_network(&net);
        assert_eq!(r.layers.len(), net.layers.len());
        assert!(r.total_cycles() > 0);
    }
}
