//! Laconic (ISCA 2019): a broadcast 2-D mesh of PEs with parallel
//! bit-serial multipliers processing booth-encoded *terms*.
//!
//! Each PE holds 16 bit-serial lanes computing a 16-long vector inner
//! product; a pair's latency is `#terms_a × #terms_w`; a PE's latency is
//! its slowest pair; the tile's latency is its slowest PE (rows share
//! weights, columns share activations — §II-B2b, Fig 3/4). Laconic
//! exploits *bit-level* sparsity on both sides but is insensitive to
//! value-level sparsity: a zero value merely gives one lane zero work while
//! the slowest pair still gates the PE.

use crate::booth::{booth_terms, term_histogram};
use crate::report::{Backend, BaselineLayerReport};
use crate::stats::{expectation, expected_max, product_pmf};
use hwmodel::{ComponentLib, EnergyCounter, SramMacro, TechNode};
use qnn::workload::LayerStats;
use serde::{Deserialize, Serialize};

/// Which latency estimate to report — the three curves of the paper's
/// Fig 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LaconicLatency {
    /// Workload divided by lane count (upper-bound performance).
    Theoretical,
    /// Per-PE slowest pair, no cross-PE sharing stall (averaged over PEs).
    AveragePe,
    /// Full tile: the slowest PE gates everyone (Laconic's real behaviour).
    Tile,
}

/// A Laconic accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Laconic {
    /// PE mesh rows.
    pub pe_rows: usize,
    /// PE mesh columns.
    pub pe_cols: usize,
    /// Bit-serial lanes (pairs) per PE.
    pub lanes: usize,
    /// Input buffer (KiB).
    pub input_buf_kb: usize,
    /// Weight buffer (KiB).
    pub weight_buf_kb: usize,
    /// Output buffer (KiB).
    pub output_buf_kb: usize,
}

impl Laconic {
    /// The paper's comparison point (§V-C): a 6×8 PE mesh, 16 lanes per PE,
    /// same compute area and buffers as the 32×16 Ristretto.
    pub fn paper_default() -> Self {
        Self {
            pe_rows: 6,
            pe_cols: 8,
            lanes: 16,
            input_buf_kb: 64,
            weight_buf_kb: 192,
            output_buf_kb: 96,
        }
    }

    /// Total bit-serial lanes in the tile.
    pub fn total_lanes(&self) -> usize {
        self.pe_rows * self.pe_cols * self.lanes
    }

    /// Exact round latencies for an explicit pair workload (used by the
    /// Fig 4 reproduction): `pairs` holds `#terms_a × #terms_w` per pair,
    /// chunked `lanes` per PE. Returns `(theoretical, average_pe, tile)`.
    pub fn round_latencies(pair_work: &[u32], lanes: usize) -> (f64, f64, u64) {
        if pair_work.is_empty() {
            return (0.0, 0.0, 0);
        }
        let lanes = lanes.max(1);
        let total: u64 = pair_work.iter().map(|&w| w as u64).sum();
        let n_lanes = pair_work.len().min(lanes * pair_work.len().div_ceil(lanes));
        let theoretical = total as f64 / n_lanes as f64;
        let pe_maxes: Vec<u64> = pair_work
            .chunks(lanes)
            .map(|pe| pe.iter().map(|&w| w as u64).max().unwrap_or(0))
            .collect();
        let avg_pe = pe_maxes.iter().sum::<u64>() as f64 / pe_maxes.len() as f64;
        let tile = pe_maxes.iter().copied().max().unwrap_or(0);
        (theoretical, avg_pe, tile)
    }

    /// Builds pair work `#terms_a × #terms_w` for explicit vectors.
    ///
    /// # Panics
    /// Panics if the vectors' lengths differ.
    pub fn pair_work(acts: &[i32], weights: &[i32]) -> Vec<u32> {
        assert_eq!(
            acts.len(),
            weights.len(),
            "inner-product vectors must align"
        );
        acts.iter()
            .zip(weights)
            .map(|(&a, &w)| booth_terms(a) * booth_terms(w))
            .collect()
    }

    /// Expected per-round latency for a layer's value distributions under
    /// the given estimate mode.
    fn expected_round_latency(&self, stats: &LayerStats, mode: LaconicLatency) -> f64 {
        let ha = term_histogram(&stats.activation_sample);
        let hw = term_histogram(&stats.weight_sample);
        let tp = product_pmf(&ha, &hw);
        match mode {
            LaconicLatency::Theoretical => expectation(&tp),
            LaconicLatency::AveragePe => expected_max(&tp, self.lanes as u64),
            LaconicLatency::Tile => expected_max(&tp, self.total_lanes() as u64),
        }
    }

    /// Simulates a layer under a chosen latency mode (the [`Backend`]
    /// impl uses [`LaconicLatency::Tile`], the machine's real behaviour).
    pub fn simulate_layer_mode(
        &self,
        stats: &LayerStats,
        mode: LaconicLatency,
    ) -> BaselineLayerReport {
        let lib = ComponentLib::n28();
        let tech = TechNode::N28;
        let layer = &stats.layer;
        let macs = layer.macs();
        let rounds = macs.div_ceil(self.total_lanes() as u64);
        let per_round = self
            .expected_round_latency(stats, mode)
            .max(f64::MIN_POSITIVE);
        let cycles = (rounds as f64 * per_round).ceil() as u64;

        // Term-pair operations actually executed (bit-level work).
        let ha = term_histogram(&stats.activation_sample);
        let hw = term_histogram(&stats.weight_sample);
        let mean_tp = expectation(&product_pmf(&ha, &hw));
        let term_ops = (macs as f64 * mean_tp) as u64;

        let a_bits = stats.a_bits.bits() as u64;
        let w_bits = stats.w_bits.bits() as u64;
        // Dense traffic: Laconic stores and moves uncompressed tensors.
        let act_read_bits = macs * a_bits / self.pe_cols as u64;
        let weight_read_bits = macs * w_bits / self.pe_rows as u64;
        let out_write_bits = layer.output_count() as u64 * 24;
        let dram_bits = hwmodel::dram::tiled_traffic_bits(
            layer.activation_count() as u64 * a_bits,
            layer.weight_count() as u64 * w_bits,
            (self.input_buf_kb as u64) << 13,
            (self.weight_buf_kb as u64) << 13,
        ) + layer.output_count() as u64 * a_bits;

        let input = SramMacro::new(self.input_buf_kb << 10, 128);
        let weight = SramMacro::new(self.weight_buf_kb << 10, 128);
        let output = SramMacro::new(self.output_buf_kb << 10, 128);

        let mut counter = EnergyCounter::new();
        counter.compute(term_ops, lib.bit_serial_lane_energy());
        // Booth encoders at the array boundary: one encode per operand
        // broadcast.
        let encodes = macs / self.pe_cols as u64 + macs / self.pe_rows as u64;
        counter.compute(encodes, lib.booth_encoder_energy);
        counter.buffer(act_read_bits, input.read_energy_pj(128) / 128.0);
        counter.buffer(weight_read_bits, weight.read_energy_pj(128) / 128.0);
        counter.buffer(out_write_bits, output.write_energy_pj(128) / 128.0);
        counter.dram_bits(dram_bits);
        counter.leakage(lib.leakage_pj(self.area_mm2(), cycles, tech.freq_mhz));

        BaselineLayerReport {
            name: layer.name.clone(),
            cycles,
            effectual_ops: term_ops,
            dram_bits,
            energy: counter.breakdown(),
        }
    }
}

impl Default for Laconic {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl Backend for Laconic {
    fn name(&self) -> &'static str {
        "Laconic"
    }

    fn area_mm2(&self) -> f64 {
        let lib = ComponentLib::n28();
        let pes = (self.pe_rows * self.pe_cols) as f64;
        pes * self.lanes as f64 * lib.bit_serial_lane_area()
            + (self.pe_rows + self.pe_cols) as f64 * lib.booth_encoder_area
            + SramMacro::new(self.input_buf_kb << 10, 128).area_mm2()
            + SramMacro::new(self.weight_buf_kb << 10, 128).area_mm2()
            + SramMacro::new(self.output_buf_kb << 10, 128).area_mm2()
            + 0.02
    }

    fn simulate_layer(&self, stats: &LayerStats) -> BaselineLayerReport {
        self.simulate_layer_mode(stats, LaconicLatency::Tile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::layers::ConvLayer;
    use qnn::quant::BitWidth;
    use qnn::rng::SeededRng;
    use qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};

    fn stats(bits: BitWidth) -> LayerStats {
        let layer = ConvLayer::conv("t", 16, 32, 3, 1, 1, 14, 14).unwrap();
        let mut rng = SeededRng::new(1);
        LayerStats::generate(
            &layer,
            &WeightProfile::benchmark(bits),
            &ActivationProfile::new(bits),
            2,
            &mut rng,
        )
    }

    #[test]
    fn latency_modes_are_ordered() {
        // theoretical <= average PE <= tile (DESIGN.md invariant 8).
        let s = stats(BitWidth::W8);
        let l = Laconic::paper_default();
        let t = l
            .simulate_layer_mode(&s, LaconicLatency::Theoretical)
            .cycles;
        let p = l.simulate_layer_mode(&s, LaconicLatency::AveragePe).cycles;
        let full = l.simulate_layer_mode(&s, LaconicLatency::Tile).cycles;
        assert!(t <= p, "{t} > {p}");
        assert!(p <= full, "{p} > {full}");
    }

    #[test]
    fn round_latencies_exact_small_case() {
        // Two PEs of 2 lanes: works [1, 4 | 2, 2].
        let (theo, avg, tile) = Laconic::round_latencies(&[1, 4, 2, 2], 2);
        assert!((theo - 9.0 / 4.0).abs() < 1e-12);
        assert!((avg - 3.0).abs() < 1e-12); // (4 + 2) / 2
        assert_eq!(tile, 4);
    }

    #[test]
    fn value_sparsity_barely_helps_tile_latency() {
        // The paper's key observation (Fig 4): raising value sparsity
        // does little for the full tile because one slow pair gates all.
        let mut gen = WorkloadGen::new(9);
        let l = Laconic::paper_default();
        let lanes = l.lanes;
        let pes = l.pe_rows * l.pe_cols;
        let measure = |gen: &mut WorkloadGen, density: f64| -> f64 {
            let mut total_tile = 0u64;
            let mut total_theo = 0.0;
            for _ in 0..200 {
                let a = gen.values_with_density(lanes * pes, BitWidth::W8, density, false);
                let w = gen.values_with_density(lanes * pes, BitWidth::W8, density, true);
                let work = Laconic::pair_work(&a, &w);
                let (theo, _, tile) = Laconic::round_latencies(&work, lanes);
                total_tile += tile;
                total_theo += theo;
            }
            total_tile as f64 / total_theo.max(1e-9)
        };
        // Slowdown relative to theoretical grows as sparsity rises.
        let dense_gap = measure(&mut gen, 0.9);
        let sparse_gap = measure(&mut gen, 0.3);
        assert!(sparse_gap > dense_gap, "{sparse_gap} vs {dense_gap}");
    }

    #[test]
    fn pair_work_rejects_mismatched_lengths() {
        let r = std::panic::catch_unwind(|| Laconic::pair_work(&[1, 2], &[1]));
        assert!(r.is_err());
    }

    #[test]
    fn lower_precision_reduces_terms_and_cycles() {
        let l = Laconic::paper_default();
        let c8 = l.simulate_layer(&stats(BitWidth::W8)).cycles;
        let c2 = l.simulate_layer(&stats(BitWidth::W2)).cycles;
        assert!(c2 < c8, "{c2} vs {c8}");
    }

    #[test]
    fn area_in_plausible_range() {
        let a = Laconic::paper_default().area_mm2();
        assert!((0.3..3.0).contains(&a), "area {a}");
    }
}
