//! Shared report types and the workspace-wide backend interface.

use hwmodel::EnergyBreakdown;
use qnn::workload::{LayerStats, NetworkStats};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Result of simulating one layer on a baseline accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineLayerReport {
    /// Layer name.
    pub name: String,
    /// Inference cycles.
    pub cycles: u64,
    /// Effectual scalar multiplications (or term-pair operations for
    /// bit-serial machines) performed.
    pub effectual_ops: u64,
    /// Off-chip traffic in bits.
    pub dram_bits: u64,
    /// Priced energy breakdown.
    pub energy: EnergyBreakdown,
}

/// Result of simulating a network on a baseline accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineNetworkReport {
    /// Accelerator name.
    pub accelerator: String,
    /// Network name.
    pub network: String,
    /// Precision label.
    pub precision: String,
    /// Per-layer reports.
    pub layers: Vec<BaselineLayerReport>,
}

impl BaselineNetworkReport {
    /// Total cycles across layers.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total energy across layers.
    pub fn total_energy(&self) -> EnergyBreakdown {
        self.layers
            .iter()
            .fold(EnergyBreakdown::default(), |acc, l| acc + l.energy)
    }
}

/// Workspace-wide simulation backend interface.
///
/// Every machine that can price a layer from its statistics — the six
/// baseline accelerators as well as the analytic Ristretto model — exposes
/// this interface, so experiments and examples can sweep heterogeneous
/// machine sets as `&dyn Backend`.
pub trait Backend: Sync {
    /// Human-readable backend name.
    fn name(&self) -> &'static str;

    /// Total accelerator area in mm² (used for area normalization).
    fn area_mm2(&self) -> f64;

    /// Simulates one layer from its statistics.
    fn simulate_layer(&self, stats: &LayerStats) -> BaselineLayerReport;

    /// Simulates a whole network. Layers are independent, so they run in
    /// parallel; results are collected back in layer order, keeping the
    /// report identical to a sequential sweep.
    fn simulate_network(&self, net: &NetworkStats) -> BaselineNetworkReport {
        BaselineNetworkReport {
            accelerator: self.name().to_string(),
            network: net.id.name().to_string(),
            precision: net.policy.label(),
            layers: net
                .layers
                .par_iter()
                .map(|l| self.simulate_layer(l))
                .collect(),
        }
    }
}

/// Former name of [`Backend`], kept as an alias for downstream code.
pub use self::Backend as Accelerator;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_report_totals() {
        let mk = |cycles, pj| BaselineLayerReport {
            name: "l".into(),
            cycles,
            effectual_ops: 1,
            dram_bits: 0,
            energy: EnergyBreakdown {
                compute_pj: pj,
                ..Default::default()
            },
        };
        let r = BaselineNetworkReport {
            accelerator: "a".into(),
            network: "n".into(),
            precision: "8b".into(),
            layers: vec![mk(5, 1.0), mk(7, 2.0)],
        };
        assert_eq!(r.total_cycles(), 12);
        assert!((r.total_energy().compute_pj - 3.0).abs() < 1e-12);
    }
}
