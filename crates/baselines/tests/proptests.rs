//! Property-based tests for the baseline models' shared machinery.

use baselines::booth::{booth_terms, pair_latency, term_histogram};
use baselines::laconic::Laconic;
use baselines::stats::{binomial_pmf, expectation, expected_max, normalize, product_pmf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn booth_terms_symmetric_and_bounded(v in -65535i32..=65535) {
        prop_assert_eq!(booth_terms(v), booth_terms(-v));
        prop_assert!(booth_terms(v) <= v.unsigned_abs().count_ones());
        // NAF of an n-bit value has at most ceil((n+1)/2) non-zero digits.
        let bits = 32 - v.unsigned_abs().leading_zeros();
        prop_assert!(booth_terms(v) <= (bits + 2) / 2 + 1);
    }

    #[test]
    fn booth_terms_shift_invariant(v in 1i32..=4095, k in 0u32..=8) {
        // Multiplying by a power of two shifts digits, never adds terms.
        prop_assert_eq!(booth_terms(v << k), booth_terms(v));
    }

    #[test]
    fn pair_latency_bilinear_zero(a in -255i32..=255) {
        prop_assert_eq!(pair_latency(a, 0), 0);
        prop_assert_eq!(pair_latency(0, a), 0);
    }

    #[test]
    fn histogram_normalizes(vals in proptest::collection::vec(-255i32..=255, 1..200)) {
        let h = term_histogram(&vals);
        let sum: f64 = h.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expected_max_monotone_in_k(
        raw in proptest::collection::vec(0.0f64..1.0, 2..10),
        k1 in 1u64..50,
        k2 in 50u64..500,
    ) {
        prop_assume!(raw.iter().sum::<f64>() > 0.0);
        let pmf = normalize(&raw);
        let e1 = expected_max(&pmf, k1);
        let e2 = expected_max(&pmf, k2);
        prop_assert!(e1 <= e2 + 1e-9);
        prop_assert!(expectation(&pmf) <= e1 + 1e-9);
        // Bounded by the support maximum.
        prop_assert!(e2 <= (pmf.len() - 1) as f64 + 1e-9);
    }

    #[test]
    fn product_pmf_mean_is_product_of_means(
        ra in proptest::collection::vec(0.0f64..1.0, 2..8),
        rb in proptest::collection::vec(0.0f64..1.0, 2..8),
    ) {
        prop_assume!(ra.iter().sum::<f64>() > 1e-6 && rb.iter().sum::<f64>() > 1e-6);
        let a = normalize(&ra);
        let b = normalize(&rb);
        let p = product_pmf(&a, &b);
        let lhs = expectation(&p);
        let rhs = expectation(&a) * expectation(&b);
        prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn binomial_mean_and_support(n in 1u64..=64, p in 0.0f64..=1.0) {
        let pmf = binomial_pmf(n, p);
        prop_assert_eq!(pmf.len(), n as usize + 1);
        let total: f64 = pmf.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-7);
        prop_assert!((expectation(&pmf) - n as f64 * p).abs() < 1e-7);
    }

    #[test]
    fn laconic_round_latency_invariants(
        work in proptest::collection::vec(0u32..=25, 1..128),
        lanes in 1usize..=16,
    ) {
        let (theo, avg, tile) = Laconic::round_latencies(&work, lanes);
        prop_assert!(theo <= avg + 1e-9);
        prop_assert!(avg <= tile as f64 + 1e-9);
        prop_assert_eq!(tile, work.iter().copied().max().unwrap_or(0) as u64);
    }
}
