//! # Ristretto — reproduction of "Ristretto: An Atomized Processing
//! Architecture for Sparsity-Condensed Stream Flow in CNN" (MICRO 2022)
//!
//! This facade crate re-exports the workspace:
//!
//! * [`qnn`] — quantized CNN substrate (tensors, quantization, sparse
//!   formats, reference convolution, model zoo, synthetic workloads),
//! * [`atomstream`] — the paper's core contribution: condensed streaming
//!   computation (atom decomposition, stream compression, intersection),
//! * [`ristretto_sim`] — the Ristretto accelerator model (Atomizer /
//!   Atomputer / Atomulator compute tiles, load balancing, energy),
//! * [`baselines`] — Bit Fusion, Laconic, SparTen and SparTen-mp models,
//! * [`hwmodel`] — 28nm area / power / energy component library.
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

pub use atomstream;
pub use baselines;
pub use hwmodel;
pub use qnn;
pub use ristretto_sim;
