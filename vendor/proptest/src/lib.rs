//! Offline stand-in for `proptest`, vendored because this build environment
//! has no network access to crates.io.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait over
//! integer/float ranges, [`Just`], `prop_oneof!` (plain and weighted),
//! `prop_map`, `proptest::collection::vec`, the `proptest!` macro with
//! `#![proptest_config(...)]`, and `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`. Cases are generated from a deterministic per-test RNG;
//! there is no shrinking — a failure reports the generated case number.

/// Deterministic RNG (splitmix64) driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            state = state.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        Self { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling; bias is negligible for test use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Error raised inside a `proptest!` case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!` and should be skipped.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_ranges!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                // unit_f64 is in [0, 1); stretch marginally so the upper
                // endpoint is reachable, then clamp.
                let span = self.end() - self.start();
                let v = self.start() + (rng.unit_f64() as $t) * span * (1.0 + <$t>::EPSILON);
                v.clamp(*self.start(), *self.end())
            }
        }
    )*};
}

float_ranges!(f32, f64);

/// Weighted union of boxed strategies (the engine behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total > 0,
            "prop_oneof! requires at least one positive weight"
        );
        Self { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum mismatch")
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// A strategy producing `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The glob import every proptest file starts with.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(( $weight as u32, $crate::Strategy::boxed($strat) )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(( 1u32, $crate::Strategy::boxed($strat) )),+
        ])
    };
}

/// Asserts inside a proptest case body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

/// Asserts equality inside a proptest case body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}` ({}:{})",
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {} ({}:{})",
                l,
                r,
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    }};
}

/// Asserts inequality inside a proptest case body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({}:{})",
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Skips cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(x in 0u32..10, y in 0u32..10) {
///         prop_assert!(x + y < 20);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    file!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                            stringify!($name), accepted, config.cases
                        );
                    }
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match result {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed on generated case {}:\n{}",
                                stringify!($name), attempts, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}
