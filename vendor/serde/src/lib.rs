//! Offline stand-in for `serde`, vendored because this build environment has
//! no network access to crates.io.
//!
//! Exposes the subset of the real API this workspace uses: the
//! [`Serialize`] / [`Deserialize`] traits, `serde::de::DeserializeOwned`,
//! and `#[derive(Serialize, Deserialize)]`. Instead of serde's streaming
//! `Serializer`/`Deserializer` data model, everything round-trips through an
//! owned JSON-like [`Value`] tree; the companion `serde_json` shim renders
//! and parses that tree.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Map, Number, Value};

/// Serialization/deserialization error: a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Mirrors `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// Mirrors `serde::de` — in particular `DeserializeOwned`, which the real
/// serde defines as `for<'de> Deserialize<'de>`; our `Deserialize` has no
/// lifetime so the two coincide.
pub mod de {
    pub use crate::Deserialize;
    pub use crate::Deserialize as DeserializeOwned;
    pub use crate::Error;
}

fn unexpected(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, got {got:?}"))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .cloned()
            .ok_or_else(|| unexpected("object", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| unexpected("bool", v))
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| unexpected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| unexpected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| unexpected("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| unexpected("f32", v))? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| unexpected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| unexpected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| unexpected("tuple array", v))?;
                let expected = [$($n),+].len();
                if arr.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {}",
                        arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| unexpected("object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic regardless of hash
        // iteration order.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| unexpected("object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
