//! The JSON-like value tree all (de)serialization goes through.

/// A JSON number: positive integer, negative integer, or float — the same
/// three-way split `serde_json` uses, so integer fields stay exact.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl Number {
    /// The value as `i64` if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(_) => None,
        }
    }

    /// The value as `u64` if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    /// The value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(u) => Some(u as f64),
            Number::NegInt(i) => Some(i as f64),
            Number::Float(f) => Some(f),
        }
    }
}

/// An ordered string-keyed map (insertion order preserved, like
/// `serde_json`'s `preserve_order` mode). Lookups are linear scans — fine
/// for the small objects this workspace serializes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` under `key`, replacing (and returning) any previous
    /// value for that key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Map keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The string slice if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element vector if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The map if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}
