//! Offline stand-in for `rayon`, vendored because this build environment has
//! no network access to crates.io.
//!
//! Implements the subset this workspace uses: `par_iter`/`into_par_iter`
//! over slices, vectors and integer ranges, `map`/`for_each`/`collect`, and
//! a [`ThreadPoolBuilder`] supporting both `build_global` (process-wide
//! thread count) and `build` + [`ThreadPool::install`] (scoped override,
//! used by determinism tests to compare serial and parallel runs in one
//! process).
//!
//! The execution engine is a shared work queue drained by
//! `std::thread::scope` workers. Results are reassembled **in input order**,
//! so `collect` is deterministic regardless of which worker ran which item —
//! callers get bit-exact equality with the sequential path whenever each
//! per-item computation is itself deterministic and the reduction is
//! order-insensitive or order-restored (as here, by index).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide thread count set by `build_global` (0 = hardware default).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]
    /// (0 = no override).
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of threads parallel operations will use on this thread:
/// an installed pool override, else the global setting, else the number of
/// available hardware threads.
pub fn current_num_threads() -> usize {
    let local = LOCAL_THREADS.with(Cell::get);
    if local != 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != 0 {
        return global;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Error type mirroring rayon's; the shim never actually fails to build.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures thread counts, mirroring rayon's builder.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the hardware-default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count (0 = hardware default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Sets the process-wide thread count.
    ///
    /// Unlike real rayon this may be called more than once (later calls
    /// win); the shim keeps rayon's signature so call sites match.
    ///
    /// # Errors
    /// Never fails in the shim.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }

    /// Builds a pool handle whose thread count applies inside
    /// [`ThreadPool::install`].
    ///
    /// # Errors
    /// Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count override (the shim spawns threads per operation
/// rather than keeping a persistent pool).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count active on the current thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = LOCAL_THREADS.with(Cell::get);
        LOCAL_THREADS.with(|c| c.set(self.num_threads));
        // Restore on unwind as well, so a panicking closure does not leak
        // the override into later tests on the same thread.
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                LOCAL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// This pool's configured thread count (0 = hardware default).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads != 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// Runs `f` over `items` on the active thread count, returning results in
/// input order. Sequential when one thread is active or there is at most
/// one item.
fn run_ordered<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let len = items.len();
    let queue = Mutex::new(items.into_iter().enumerate());
    let mut slots: Vec<Option<U>> = std::iter::repeat_with(|| None).take(len).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let next = queue.lock().unwrap().next();
                        match next {
                            Some((index, item)) => done.push((index, f(item))),
                            None => break,
                        }
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            // A panic in `f` propagates here and unwinds the scope.
            for (index, value) in handle.join().unwrap() {
                slots[index] = Some(value);
            }
        }
    });
    slots.into_iter().map(|slot| slot.unwrap()).collect()
}

/// A materialized parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to each item in parallel (lazily; runs at the terminal
    /// operation).
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_ordered(self.items, f);
    }

    /// Collects the items (identity terminal, for symmetry with rayon).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator; terminal operations run the map in parallel.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Composes another map stage.
    pub fn map<V, G>(self, g: G) -> ParMap<T, impl Fn(T) -> V + Sync>
    where
        V: Send,
        G: Fn(U) -> V + Sync,
    {
        let f = self.f;
        ParMap {
            items: self.items,
            f: move |x| g(f(x)),
        }
    }

    /// Runs the pipeline and collects results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        run_ordered(self.items, self.f).into_iter().collect()
    }

    /// Runs the pipeline for its side effects.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U) + Sync,
    {
        let f = self.f;
        run_ordered(self.items, move |x| g(f(x)));
    }

    /// Runs the pipeline and reduces results **in input order** (stable
    /// regardless of scheduling, unlike rayon's tree reduce).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
    where
        ID: Fn() -> U,
        OP: Fn(U, U) -> U,
    {
        run_ordered(self.items, self.f)
            .into_iter()
            .fold(identity(), op)
    }
}

/// Converts a collection into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;

    /// Materializes the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter {
                    items: self.collect(),
                }
            }
        }

        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter {
                    items: self.collect(),
                }
            }
        }
    )*};
}

range_into_par!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Borrows a collection as a parallel iterator over `&T`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a shared reference).
    type Item: Send + 'a;

    /// Materializes the parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The glob import rayon users start with.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collect_preserves_input_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> =
            pool.install(|| (0..1000usize).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let data: Vec<u64> = (0..257).collect();
        let serial_pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let parallel_pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let serial: Vec<u64> = serial_pool.install(|| data.par_iter().map(|&x| x * x).collect());
        let parallel: Vec<u64> =
            parallel_pool.install(|| data.par_iter().map(|&x| x * x).collect());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn install_restores_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn ordered_reduce_is_sequential_order() {
        let strings: Vec<String> = (0..10).map(|i| i.to_string()).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let joined = pool.install(|| {
            strings
                .par_iter()
                .map(String::clone)
                .reduce(String::new, |a, b| a + &b)
        });
        assert_eq!(joined, "0123456789");
    }
}
