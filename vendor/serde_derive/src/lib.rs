//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Parses the item with the bare `proc_macro` API (no syn/quote — this
//! build environment is offline) and supports exactly the shapes this
//! workspace uses:
//!
//! * structs with named fields,
//! * tuple structs with a single field (newtypes),
//! * enums whose variants are unit or single-field (newtype) — serialized
//!   in serde's externally-tagged form (`"Variant"` / `{"Variant": value}`).
//!
//! Generics and `#[serde(...)]` attributes are unsupported and rejected
//! with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct { fields: Vec<String> },
    NewtypeStruct,
    Enum { variants: Vec<(String, bool)> }, // (name, has_payload)
}

struct Item {
    name: String,
    shape: Shape,
}

fn err(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips `#[...]` attribute groups starting at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a `pub` / `pub(...)` visibility marker at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a token slice on top-level commas. Brackets/parens/braces arrive
/// as single `Group` trees, so any comma we see at this level is a field or
/// variant separator — except commas inside generic angle brackets, which
/// we track by `<`/`>` depth.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generics (on `{name}`)"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut fields = Vec::new();
                for field in split_commas(&inner) {
                    let mut j = skip_attrs(&field, 0);
                    j = skip_vis(&field, j);
                    match field.get(j) {
                        Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
                        None => {} // trailing comma
                        _ => return Err(format!("unsupported field in `{name}`")),
                    }
                }
                Ok(Item {
                    name,
                    shape: Shape::NamedStruct { fields },
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let arity = split_commas(&inner).len();
                if arity != 1 {
                    return Err(format!(
                        "serde shim derive supports only 1-field tuple structs (`{name}` has {arity})"
                    ));
                }
                Ok(Item {
                    name,
                    shape: Shape::NewtypeStruct,
                })
            }
            _ => Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for var in split_commas(&inner) {
                    let j = skip_attrs(&var, 0);
                    let vname = match var.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        None => continue, // trailing comma
                        _ => return Err(format!("unsupported variant in `{name}`")),
                    };
                    match var.get(j + 1) {
                        None => variants.push((vname, false)),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let payload: Vec<TokenTree> = g.stream().into_iter().collect();
                            if split_commas(&payload).len() != 1 {
                                return Err(format!(
                                    "variant `{name}::{vname}` must carry exactly one field"
                                ));
                            }
                            variants.push((vname, true));
                        }
                        _ => {
                            return Err(format!(
                                "unsupported payload on variant `{name}::{vname}` \
                                 (only unit and newtype variants are supported)"
                            ))
                        }
                    }
                }
                Ok(Item {
                    name,
                    shape: Shape::Enum { variants },
                })
            }
            _ => Err(format!("unsupported enum body for `{name}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return err(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct { fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "m.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!("let mut m = ::serde::Map::new();\n{inserts}::serde::Value::Object(m)")
        }
        Shape::NewtypeStruct => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Enum { variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, payload)| {
                    if *payload {
                        format!(
                            "{name}::{v}(inner) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert({v:?}.to_string(), ::serde::Serialize::to_value(inner));\n\
                             ::serde::Value::Object(m)\n}}\n"
                        )
                    } else {
                        format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n")
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .unwrap()
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return err(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct { fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         obj.get({f:?}).unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| ::serde::Error::custom(\
                         format!(\"{name}.{f}: {{e}}\")))?,\n"
                    )
                })
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(concat!(\"expected object for \", {name:?})))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Shape::NewtypeStruct => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Enum { variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, payload)| !payload)
                .map(|(v, _)| format!("{v:?} => return Ok({name}::{v}),\n"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|(_, payload)| *payload)
                .map(|(v, _)| {
                    format!(
                        "if let Some(inner) = obj.get({v:?}) {{\n\
                         return Ok({name}::{v}(::serde::Deserialize::from_value(inner)?));\n}}\n"
                    )
                })
                .collect();
            format!(
                "if let Some(s) = v.as_str() {{\n\
                 match s {{\n{unit_arms}_ => {{}}\n}}\n\
                 return Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant {{s:?}}\")));\n}}\n\
                 if let Some(obj) = v.as_object() {{\n{payload_arms}}}\n\
                 Err(::serde::Error::custom(concat!(\"cannot deserialize \", {name:?})))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
    .parse()
    .unwrap()
}
