//! Offline stand-in for `criterion`, vendored because this build environment
//! has no network access to crates.io.
//!
//! Implements the subset this workspace's benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `finish`, [`Bencher::iter`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a short warm-up, then a
//! fixed number of timed samples, and reports the median per-iteration time
//! to stdout. There is no statistical analysis, HTML report, or baseline
//! comparison — just honest wall-clock medians, which is enough to compare
//! kernels before/after a change in this repo.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Configuration hook accepted for API compatibility; reports are
    /// text-only in this shim.
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    group: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{id}", self.group), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples after a calibration
    /// pass that picks an iteration count so each sample is long enough to
    /// measure reliably.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes >= 1ms, capping the effort so huge benches still finish.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id}: no samples (Bencher::iter was not called)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let per_iter = median.as_nanos() as f64 / b.iters_per_sample as f64;
    println!(
        "{id}: median {} per iter ({} samples x {} iters)",
        format_ns(per_iter),
        b.samples.len(),
        b.iters_per_sample
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Match criterion's CLI contract loosely: `--bench` (passed by
            // `cargo bench`) and test-harness flags are accepted and
            // ignored; `--test` runs each bench once for smoke testing.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--help") {
                println!("vendored criterion shim: runs all benches; flags are accepted but ignored");
                return;
            }
            $( $group(); )+
        }
    };
}
