//! JSON writers: compact and pretty (2-space indent, serde_json layout).

use serde::value::{Number, Value};

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::PosInt(u) => out.push_str(&u.to_string()),
        Number::NegInt(i) => out.push_str(&i.to_string()),
        Number::Float(f) => {
            if !f.is_finite() {
                // serde_json cannot represent non-finite floats; it emits
                // null at the Value layer.
                out.push_str("null");
                return;
            }
            // Rust's `{}` prints the shortest digits that round-trip; add a
            // `.0` marker when the text would otherwise look integral so the
            // value re-parses as a float (fixed-point serialization).
            let s = format!("{f}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
}

pub fn compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                compact(val, out);
            }
            out.push('}');
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

pub fn pretty(v: &Value, out: &mut String, level: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                pretty(item, out, level + 1);
            }
            out.push('\n');
            indent(out, level);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                write_escaped(k, out);
                out.push_str(": ");
                pretty(val, out, level + 1);
            }
            out.push('\n');
            indent(out, level);
            out.push('}');
        }
        other => compact(other, out),
    }
}
