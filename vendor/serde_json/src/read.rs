//! A recursive-descent JSON parser producing the shim's `Value` tree.

use serde::value::{Map, Number, Value};
use serde::Error;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
/// Returns a message pinpointing the byte offset of the first syntax error.
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow.
                                self.pos += 1;
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("expected low surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("expected low surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8: it
                    // came from a &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the 4 hex digits of a `\uXXXX` escape; on entry `pos` is at the
    /// `u`, on exit at its last hex digit.
    fn hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(if i >= 0 {
                    Number::PosInt(i as u64)
                } else {
                    Number::NegInt(i)
                }));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
        }
        let f: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("invalid number `{text}`")))?;
        Ok(Value::Number(Number::Float(f)))
    }
}
