//! Offline stand-in for `serde_json`, vendored because this build
//! environment has no network access to crates.io.
//!
//! Provides the subset of the real API this workspace uses: `Value`, `Map`,
//! `to_value`, `to_string`, `to_string_pretty`, `from_str` and the `json!`
//! macro. Serialization is a fixed point: `to_string ∘ from_str ∘
//! to_string` always reproduces the same bytes (floats render with
//! shortest-round-trip digits and a `.0` marker when integral, so their
//! text form re-parses to the identical bit pattern).

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

mod read;
mod write;

pub use read::from_str_value;

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
/// Infallible for the shim's value-tree model; the `Result` mirrors the
/// real API.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serializes to a compact JSON string.
///
/// # Errors
/// Infallible for the shim's value-tree model; the `Result` mirrors the
/// real API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes to a pretty-printed JSON string (2-space indent).
///
/// # Errors
/// Infallible for the shim's value-tree model; the `Result` mirrors the
/// real API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parses a JSON string into any deserializable type.
///
/// # Errors
/// Returns a parse error on malformed JSON, or a shape error when the JSON
/// does not match `T`.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = read::from_str_value(s)?;
    T::from_value(&value)
}

/// Builds a [`Value`] from a JSON-like literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).unwrap()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_fixed_point() {
        let src =
            r#"{"a":[1,2.5,-3],"b":{"c":"x\n","d":null,"e":true},"big":18446744073709551615}"#;
        let v: Value = from_str(src).unwrap();
        let once = to_string(&v).unwrap();
        let again: Value = from_str(&once).unwrap();
        assert_eq!(to_string(&again).unwrap(), once);
    }

    #[test]
    fn floats_keep_type_markers() {
        let v = to_value(2.0f64).unwrap();
        assert_eq!(to_string(&v).unwrap(), "2.0");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"a": 1u32, "b": [true, null]});
        assert_eq!(v["a"], 1u64);
        assert!(v["b"][1].is_null());
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_matches_expected_layout() {
        let v = json!({"a": [1, 2], "b": {}});
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}"
        );
    }
}
