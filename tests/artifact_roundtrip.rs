//! Adversarial coverage of the versioned artifact format: every
//! single-bit corruption and every truncation of an encoded
//! `CompiledNetwork` must be rejected by the loader with a typed error,
//! and the on-disk model cache must degrade to a recompile — with
//! byte-identical results — whenever its artifact is damaged.

use atomstream::wire::WireError;
use qnn::conv::ConvGeometry;
use qnn::quant::BitWidth;
use qnn::tensor::{Tensor3, Tensor4};
use ristretto_sim::artifact;
use ristretto_sim::config::RistrettoConfig;
use ristretto_sim::engine::{compile, NetworkModel, Session};
use ristretto_sim::modelcache::{CacheError, CacheKey, ModelCache};
use ristretto_sim::pipeline::PipelineLayer;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

fn tiny_network() -> (NetworkModel, RistrettoConfig) {
    let kernels = Tensor4::from_vec(
        2,
        1,
        3,
        3,
        vec![
            1, 0, -2, 0, 3, 0, -1, 0, 2, // oc 0
            0, 2, 0, -3, 0, 1, 0, -1, 0, // oc 1
        ],
    )
    .unwrap();
    let layer = PipelineLayer {
        name: "l0".to_string(),
        kernels,
        geom: ConvGeometry::unit_stride(1),
        w_bits: BitWidth::W4,
        a_bits: BitWidth::W4,
        requant_shift: 2,
        out_bits: 4,
        pool: None,
    };
    let model = NetworkModel::new("tiny", (1, 6, 6), vec![layer]);
    (model, RistrettoConfig::paper_default())
}

fn tiny_input() -> Tensor3 {
    Tensor3::from_vec(1, 6, 6, (0..36).map(|v| v % 5).collect()).unwrap()
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ristretto_artifact_rt_{tag}_{}",
        std::process::id()
    ))
}

#[test]
fn every_single_bit_corruption_is_rejected() {
    // Flip one bit in every byte of the artifact (rotating which bit by
    // position, so all eight lanes are exercised across the file) and
    // require a decode error each time: the magic/version checks cover the
    // prefix, per-section checksums cover every payload byte, and the
    // framing validators cover lengths, names and the checksums
    // themselves.
    let (model, cfg) = tiny_network();
    let net = compile(&model, &cfg).unwrap();
    let bytes = artifact::encode(&net);
    let mut sections = BTreeSet::new();
    for pos in 0..bytes.len() {
        let mut dirty = bytes.clone();
        dirty[pos] ^= 1 << (pos % 8);
        let err =
            artifact::decode(&dirty).expect_err(&format!("bit flip at byte {pos} decoded cleanly"));
        if let Some(section) = err.section() {
            sections.insert(section.to_string());
        }
    }
    // The errors name the damaged region: all four section kinds of the
    // layout must appear across the sweep.
    for expected in ["header", "layer0.streams", "layer0.balancer", "layer0.plan"] {
        assert!(
            sections.iter().any(|s| s.contains(expected)),
            "no corruption error ever named `{expected}` (saw {sections:?})"
        );
    }
}

#[test]
fn every_truncation_is_rejected() {
    let (model, cfg) = tiny_network();
    let net = compile(&model, &cfg).unwrap();
    let bytes = artifact::encode(&net);
    for len in 0..bytes.len() {
        assert!(
            artifact::decode(&bytes[..len]).is_err(),
            "truncation to {len} of {} bytes decoded cleanly",
            bytes.len()
        );
    }
}

#[test]
fn cache_load_names_the_file_on_version_skew() {
    let (model, cfg) = tiny_network();
    let net = compile(&model, &cfg).unwrap();
    let dir = tmp_dir("skew");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ModelCache::new(&dir);
    let key = CacheKey::derive(&model, &cfg);
    cache.store(&net, key).unwrap();

    let path = dir.join(key.file_name());
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8] = bytes[8].wrapping_add(1); // format version, little-endian LSB
    std::fs::write(&path, &bytes).unwrap();

    match cache.load(&path) {
        Err(CacheError::Artifact {
            path: p,
            source: WireError::VersionSkew { found, supported },
        }) => {
            assert_eq!(p, path);
            assert_eq!(found, supported + 1);
        }
        other => panic!("expected a version-skew artifact error, got {other:?}"),
    }
    // `verify` reports the same rejection without panicking on the rest.
    let results = cache.verify().unwrap();
    assert_eq!(results.len(), 1);
    assert!(results[0].1.is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_load_rejects_a_misnamed_artifact() {
    let (model, cfg) = tiny_network();
    let net = compile(&model, &cfg).unwrap();
    let dir = tmp_dir("misnamed");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ModelCache::new(&dir);
    let key = CacheKey::derive(&model, &cfg);
    cache.store(&net, key).unwrap();

    // A valid artifact under the wrong content address must be refused:
    // the loader recomputes both hash halves from the decoded contents.
    let wrong = dir.join(format!("{:016x}-{:016x}.rma", 0u64, 1u64));
    std::fs::rename(dir.join(key.file_name()), &wrong).unwrap();
    assert!(matches!(
        cache.load(&wrong),
        Err(CacheError::Mismatch { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_cache_entries_fall_back_to_recompile_with_identical_results() {
    let (model, cfg) = tiny_network();
    let dir = tmp_dir("fallback");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ModelCache::new(&dir);
    let input = tiny_input();

    let cold = cache.compile_cached(&model, &cfg).unwrap();
    let baseline = Session::new(Arc::clone(&cold)).run(&input).unwrap();

    // Damage every section in turn; each damaged artifact must be
    // silently replaced by a recompile whose session output is
    // byte-identical, and the rewritten artifact must verify clean again.
    let path = dir.join(CacheKey::derive(&model, &cfg).file_name());
    let pristine = std::fs::read(&path).unwrap();
    let probes = [9usize, 40, pristine.len() / 2, pristine.len() - 9];
    for (i, &pos) in probes.iter().enumerate() {
        let mut dirty = pristine.clone();
        dirty[pos] ^= 1 << (i % 8);
        std::fs::write(&path, &dirty).unwrap();

        let recompiled = cache.compile_cached(&model, &cfg).unwrap();
        assert_eq!(*recompiled, *cold, "recompile diverged (probe {i})");
        let rerun = Session::new(recompiled).run(&input).unwrap();
        assert_eq!(rerun.output, baseline.output, "output diverged (probe {i})");

        let results = cache.verify().unwrap();
        assert!(
            results.iter().all(|(_, v)| v.is_ok()),
            "rewritten artifact failed verify (probe {i})"
        );
        assert_eq!(std::fs::read(&path).unwrap(), pristine, "probe {i}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
