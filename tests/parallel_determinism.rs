//! Determinism regression tests for the parallel execution layer: the
//! functional CSC convolution and the cycle-level core simulator must
//! produce results equal to the serial baseline at every thread count.
//!
//! The parallel fan-outs merge per-channel `FullConvAcc` planes by `i64`
//! addition (commutative) and collect per-tile reports in group order, so
//! equality here is exact — not approximate.

use atomstream::conv_csc::{
    conv2d_csc, conv2d_csc_streams, conv2d_csc_streams_reference, CscConfig, CscOutput,
    WeightStreamSet,
};
use qnn::quant::BitWidth;
use qnn::workload::{ActivationProfile, SyntheticLayer, WeightProfile, WorkloadGen};
use rayon::ThreadPoolBuilder;
use ristretto_sim::balance::BalanceStrategy;
use ristretto_sim::config::RistrettoConfig;
use ristretto_sim::core::{CoreReport, CoreSim};

fn materialized(seed: u64) -> SyntheticLayer {
    let layer = qnn::layers::ConvLayer::conv("det", 12, 8, 3, 1, 1, 14, 14).unwrap();
    let mut gen = WorkloadGen::new(seed);
    SyntheticLayer::generate(
        &layer,
        &WeightProfile::benchmark(BitWidth::W4),
        &ActivationProfile::new(BitWidth::W8),
        &mut gen,
    )
}

/// Runs `f` under an explicit worker-thread count.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("build thread pool")
        .install(f)
}

#[test]
fn conv2d_csc_is_thread_count_invariant() {
    let s = materialized(41);
    let cfg = CscConfig::default();
    let run = || -> CscOutput {
        conv2d_csc(
            &s.fmap,
            &s.kernels,
            s.layer.geometry(),
            BitWidth::W8,
            BitWidth::W4,
            &cfg,
        )
        .unwrap()
    };
    let serial = with_threads(1, run);
    for threads in [2, 4, 8] {
        let parallel = with_threads(threads, run);
        assert_eq!(
            serial.output, parallel.output,
            "output differs at {threads} threads"
        );
        assert_eq!(
            serial.stats, parallel.stats,
            "stats differ at {threads} threads"
        );
    }
}

#[test]
fn core_sim_is_thread_count_invariant() {
    let s = materialized(43);
    let core = CoreSim::try_new(RistrettoConfig {
        tiles: 4,
        multipliers: 8,
        tile_h: 7,
        tile_w: 7,
        balancing: BalanceStrategy::WeightActivation,
        ..RistrettoConfig::paper_default()
    })
    .unwrap();
    let run = || -> CoreReport { core.run_layer(&s.fmap, &s.kernels, 8, 4).unwrap() };
    let serial = with_threads(1, run);
    for threads in [2, 4, 8] {
        let parallel = with_threads(threads, run);
        assert_eq!(serial, parallel, "core report differs at {threads} threads");
    }
}

#[test]
fn planned_and_reference_kernels_agree_at_every_thread_count() {
    // Dual-kernel oracle: the planned scratch-arena kernel behind
    // `conv2d_csc_streams` and the value-major reference kernel are
    // independent implementations of the same intersection; outputs and
    // stats must be byte-identical to each other — and to the serial
    // baseline — at every thread count.
    let s = materialized(47);
    let cfg = CscConfig::default();
    let geom = s.layer.geometry();
    let weights = WeightStreamSet::compile(&s.kernels, BitWidth::W4, cfg.atom_bits).unwrap();
    let baseline = with_threads(1, || {
        conv2d_csc_streams_reference(&s.fmap, &weights, geom, BitWidth::W8, &cfg).unwrap()
    });
    for threads in [1, 2, 4, 8] {
        let planned = with_threads(threads, || {
            conv2d_csc_streams(&s.fmap, &weights, geom, BitWidth::W8, &cfg).unwrap()
        });
        let reference = with_threads(threads, || {
            conv2d_csc_streams_reference(&s.fmap, &weights, geom, BitWidth::W8, &cfg).unwrap()
        });
        assert_eq!(
            planned.output, baseline.output,
            "planned kernel output differs at {threads} threads"
        );
        assert_eq!(
            planned.stats, baseline.stats,
            "planned kernel stats differ at {threads} threads"
        );
        assert_eq!(
            reference, baseline,
            "reference kernel differs from itself at {threads} threads"
        );
    }
}
