//! Determinism regression tests for the parallel execution layer: the
//! functional CSC convolution and the cycle-level core simulator must
//! produce results equal to the serial baseline at every thread count.
//!
//! The parallel fan-outs merge per-channel `FullConvAcc` planes by `i64`
//! addition (commutative) and collect per-tile reports in group order, so
//! equality here is exact — not approximate.

use atomstream::conv_csc::{conv2d_csc, CscConfig, CscOutput};
use qnn::quant::BitWidth;
use qnn::workload::{ActivationProfile, SyntheticLayer, WeightProfile, WorkloadGen};
use rayon::ThreadPoolBuilder;
use ristretto_sim::balance::BalanceStrategy;
use ristretto_sim::config::RistrettoConfig;
use ristretto_sim::core::{CoreReport, CoreSim};

fn materialized(seed: u64) -> SyntheticLayer {
    let layer = qnn::layers::ConvLayer::conv("det", 12, 8, 3, 1, 1, 14, 14).unwrap();
    let mut gen = WorkloadGen::new(seed);
    SyntheticLayer::generate(
        &layer,
        &WeightProfile::benchmark(BitWidth::W4),
        &ActivationProfile::new(BitWidth::W8),
        &mut gen,
    )
}

/// Runs `f` under an explicit worker-thread count.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("build thread pool")
        .install(f)
}

#[test]
fn conv2d_csc_is_thread_count_invariant() {
    let s = materialized(41);
    let cfg = CscConfig::default();
    let run = || -> CscOutput {
        conv2d_csc(
            &s.fmap,
            &s.kernels,
            s.layer.geometry(),
            BitWidth::W8,
            BitWidth::W4,
            &cfg,
        )
        .unwrap()
    };
    let serial = with_threads(1, run);
    for threads in [2, 4, 8] {
        let parallel = with_threads(threads, run);
        assert_eq!(
            serial.output, parallel.output,
            "output differs at {threads} threads"
        );
        assert_eq!(
            serial.stats, parallel.stats,
            "stats differ at {threads} threads"
        );
    }
}

#[test]
fn core_sim_is_thread_count_invariant() {
    let s = materialized(43);
    let core = CoreSim::try_new(RistrettoConfig {
        tiles: 4,
        multipliers: 8,
        tile_h: 7,
        tile_w: 7,
        balancing: BalanceStrategy::WeightActivation,
        ..RistrettoConfig::paper_default()
    })
    .unwrap();
    let run = || -> CoreReport { core.run_layer(&s.fmap, &s.kernels, 8, 4).unwrap() };
    let serial = with_threads(1, run);
    for threads in [2, 4, 8] {
        let parallel = with_threads(threads, run);
        assert_eq!(serial, parallel, "core report differs at {threads} threads");
    }
}
