//! End-to-end condensed-streaming-computation pipeline tests (Fig 6):
//! synthetic quantized layers convolved via CSC must match the dense
//! reference bit-exactly, including across a two-layer chain with
//! requantization between layers.

use ristretto::atomstream::atom::AtomBits;
use ristretto::atomstream::conv_csc::{conv2d_csc, CscConfig};
use ristretto::qnn::conv::{conv2d, ConvGeometry};
use ristretto::qnn::layers::ConvLayer;
use ristretto::qnn::quant::BitWidth;
use ristretto::qnn::workload::{ActivationProfile, SyntheticLayer, WeightProfile, WorkloadGen};

fn check_layer(layer: &ConvLayer, a_bits: BitWidth, w_bits: BitWidth, seed: u64) {
    let mut gen = WorkloadGen::new(seed);
    let s = SyntheticLayer::generate(
        layer,
        &WeightProfile::benchmark(w_bits),
        &ActivationProfile::new(a_bits),
        &mut gen,
    );
    let geom = layer.geometry();
    let dense = conv2d(&s.fmap, &s.kernels, geom).expect("dense conv");
    for (th, tw) in [(4, 4), (8, 8)] {
        let cfg = CscConfig {
            tile_h: th,
            tile_w: tw,
            ..CscConfig::default()
        };
        let csc = conv2d_csc(&s.fmap, &s.kernels, geom, a_bits, w_bits, &cfg).expect("csc conv");
        assert_eq!(csc.output, dense, "{} tile {th}x{tw}", layer.name);
    }
}

#[test]
fn csc_matches_dense_on_realistic_geometries() {
    // Miniature versions of real layer shapes: 3x3 s1 p1, 1x1, 5x5 p2,
    // 7x7 s2 p3, 3x3 s2 (ResNet downsample).
    let layers = [
        ConvLayer::conv("vgg_like", 8, 16, 3, 1, 1, 14, 14).unwrap(),
        ConvLayer::conv("pointwise", 12, 24, 1, 1, 0, 10, 10).unwrap(),
        ConvLayer::conv("alex_like", 4, 8, 5, 1, 2, 13, 13).unwrap(),
        ConvLayer::conv("stem", 3, 8, 7, 2, 3, 21, 21).unwrap(),
        ConvLayer::conv("downsample", 8, 16, 3, 2, 1, 12, 12).unwrap(),
    ];
    for (i, layer) in layers.iter().enumerate() {
        check_layer(layer, BitWidth::W8, BitWidth::W4, 100 + i as u64);
    }
}

#[test]
fn csc_matches_dense_across_precisions() {
    let layer = ConvLayer::conv("mix", 6, 12, 3, 1, 1, 12, 12).unwrap();
    for (ai, &a_bits) in [BitWidth::W2, BitWidth::W4, BitWidth::W8]
        .iter()
        .enumerate()
    {
        for (wi, &w_bits) in [BitWidth::W2, BitWidth::W4, BitWidth::W8]
            .iter()
            .enumerate()
        {
            check_layer(&layer, a_bits, w_bits, (ai * 3 + wi) as u64);
        }
    }
}

#[test]
fn two_layer_chain_with_requantization() {
    let mut gen = WorkloadGen::new(55);
    let l1 = ConvLayer::conv("l1", 4, 8, 3, 1, 1, 12, 12).unwrap();
    let s1 = SyntheticLayer::generate(
        &l1,
        &WeightProfile::benchmark(BitWidth::W4),
        &ActivationProfile::new(BitWidth::W8),
        &mut gen,
    );
    let w2 = gen
        .weights(6, 8, 3, 3, &WeightProfile::benchmark(BitWidth::W4))
        .expect("kernel generation");

    let geom = ConvGeometry::unit_stride(1);
    let cfg = CscConfig::default();

    // Layer 1 on both paths.
    let csc1 = conv2d_csc(
        &s1.fmap,
        &s1.kernels,
        geom,
        BitWidth::W8,
        BitWidth::W4,
        &cfg,
    )
    .unwrap();
    let dense1 = conv2d(&s1.fmap, &s1.kernels, geom).unwrap();
    assert_eq!(csc1.output, dense1);

    // Post-processing: ReLU + requantize to 8-bit (the PPU's job), then
    // layer 2.
    let act2 = csc1.output.requantize_relu(4, 8);
    assert!(act2.as_slice().iter().all(|&v| (0..=255).contains(&v)));
    let csc2 = conv2d_csc(&act2, &w2, geom, BitWidth::W8, BitWidth::W4, &cfg).unwrap();
    let dense2 = conv2d(&act2, &w2, geom).unwrap();
    assert_eq!(csc2.output, dense2);
}

#[test]
fn atom_granularities_agree_with_each_other() {
    let layer = ConvLayer::conv("gran", 5, 10, 3, 1, 1, 9, 9).unwrap();
    let mut gen = WorkloadGen::new(77);
    let s = SyntheticLayer::generate(
        &layer,
        &WeightProfile::benchmark(BitWidth::W8),
        &ActivationProfile::new(BitWidth::W8),
        &mut gen,
    );
    let geom = layer.geometry();
    let reference = conv2d(&s.fmap, &s.kernels, geom).unwrap();
    for gran in [AtomBits::B1, AtomBits::B2, AtomBits::B3, AtomBits::B4] {
        let cfg = CscConfig {
            atom_bits: gran,
            ..CscConfig::default()
        };
        let out = conv2d_csc(&s.fmap, &s.kernels, geom, BitWidth::W8, BitWidth::W8, &cfg)
            .unwrap()
            .output;
        assert_eq!(out, reference, "granularity {gran}");
    }
}

#[test]
fn sparser_inputs_do_strictly_less_work() {
    let layer = ConvLayer::conv("sparsity", 6, 12, 3, 1, 1, 12, 12).unwrap();
    let mut gen = WorkloadGen::new(3);
    let dense_s = SyntheticLayer::generate(
        &layer,
        &WeightProfile::benchmark(BitWidth::W8).with_prune(0.1),
        &ActivationProfile::new(BitWidth::W8),
        &mut gen,
    );
    let sparse_s = SyntheticLayer::generate(
        &layer,
        &WeightProfile::benchmark(BitWidth::W8).with_prune(0.8),
        &ActivationProfile::new(BitWidth::W8),
        &mut gen,
    );
    let cfg = CscConfig::default();
    let geom = layer.geometry();
    let a = conv2d_csc(
        &dense_s.fmap,
        &dense_s.kernels,
        geom,
        BitWidth::W8,
        BitWidth::W8,
        &cfg,
    )
    .unwrap();
    let b = conv2d_csc(
        &sparse_s.fmap,
        &sparse_s.kernels,
        geom,
        BitWidth::W8,
        BitWidth::W8,
        &cfg,
    )
    .unwrap();
    assert!(
        b.stats.intersect.atom_mults < a.stats.intersect.atom_mults,
        "{} vs {}",
        b.stats.intersect.atom_mults,
        a.stats.intersect.atom_mults
    );
    assert!(b.stats.intersect.steps < a.stats.intersect.steps);
}
