//! Compile-once/run-many equivalence: precompiling the static weight
//! artifacts and running against the compiled streams must be
//! byte-identical to the direct (compile-inline) paths, for the
//! functional CSC convolution, the cycle-level core, and a whole mini
//! network — at one worker thread and at many.

use atomstream::conv_csc::{conv2d_csc, conv2d_csc_streams, CscConfig, WeightStreamSet};
use qnn::mini::MiniNetwork;
use qnn::models::NetworkId;
use qnn::quant::BitWidth;
use qnn::workload::{ActivationProfile, SyntheticLayer, WeightProfile, WorkloadGen};
use rayon::ThreadPoolBuilder;
use ristretto_sim::config::RistrettoConfig;
use ristretto_sim::core::CoreSim;
use ristretto_sim::engine::{compile, NetworkModel, Session};
use ristretto_sim::pipeline::FunctionalPipeline;

fn materialized(seed: u64) -> SyntheticLayer {
    let layer = qnn::layers::ConvLayer::conv("eq", 10, 12, 3, 1, 1, 13, 13).unwrap();
    let mut gen = WorkloadGen::new(seed);
    SyntheticLayer::generate(
        &layer,
        &WeightProfile::benchmark(BitWidth::W4),
        &ActivationProfile::new(BitWidth::W8),
        &mut gen,
    )
}

/// Runs `f` under an explicit worker-thread count.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("build thread pool")
        .install(f)
}

#[test]
fn precompiled_streams_match_direct_csc() {
    let s = materialized(101);
    let cfg = CscConfig::default();
    for threads in [1, 4] {
        with_threads(threads, || {
            let direct = conv2d_csc(
                &s.fmap,
                &s.kernels,
                s.layer.geometry(),
                BitWidth::W8,
                BitWidth::W4,
                &cfg,
            )
            .unwrap();
            let weights =
                WeightStreamSet::compile(&s.kernels, BitWidth::W4, cfg.atom_bits).unwrap();
            let streamed =
                conv2d_csc_streams(&s.fmap, &weights, s.layer.geometry(), BitWidth::W8, &cfg)
                    .unwrap();
            assert_eq!(
                direct.output, streamed.output,
                "output differs at {threads} threads"
            );
            assert_eq!(
                direct.stats, streamed.stats,
                "CscStats differ at {threads} threads"
            );
        });
    }
}

#[test]
fn precompiled_streams_match_direct_core_report() {
    let s = materialized(103);
    let cfg = RistrettoConfig::paper_default();
    let core = CoreSim::try_new(cfg).unwrap();
    for threads in [1, 4] {
        with_threads(threads, || {
            let direct = core.run_layer(&s.fmap, &s.kernels, 8, 4).unwrap();
            let weights =
                WeightStreamSet::compile(&s.kernels, BitWidth::W4, cfg.atom_bits).unwrap();
            let streamed = core.run_layer_streams(&weights, &s.fmap, 8).unwrap();
            assert_eq!(direct, streamed, "CoreReport differs at {threads} threads");
        });
    }
}

#[test]
fn compiled_session_matches_functional_pipeline() {
    let mini = MiniNetwork::try_new(NetworkId::ResNet18).unwrap();
    let mut gen = WorkloadGen::new(107);
    let (c, h, w) = mini.input;
    let input = gen
        .activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
        .unwrap();
    let model =
        NetworkModel::from_mini(&mini, &mut gen, &WeightProfile::benchmark(BitWidth::W4)).unwrap();
    let cfg = RistrettoConfig::paper_default();
    let compiled = compile(&model, &cfg).unwrap();
    let pipeline = FunctionalPipeline::new(model.layers.clone(), *compiled.csc_config());
    for threads in [1, 4] {
        with_threads(threads, || {
            let session = Session::new(compiled.clone());
            let run = session.run(&input).unwrap();
            let (direct_out, direct_traces) = pipeline.run(&input).unwrap();
            assert_eq!(
                run.output, direct_out,
                "output differs at {threads} threads"
            );
            assert_eq!(
                run.traces, direct_traces,
                "traces differ at {threads} threads"
            );
        });
    }
}

#[test]
fn session_scratch_reuse_is_byte_identical_across_inputs() {
    // A warm session recycles its per-layer scratch arenas (accumulator
    // planes, weight plans) across inputs; every run must stay
    // byte-identical to a cold session evaluating the same input — at one
    // worker thread and at many.
    let mini = MiniNetwork::try_new(NetworkId::GoogLeNet).unwrap();
    let mut gen = WorkloadGen::new(211);
    let model =
        NetworkModel::from_mini(&mini, &mut gen, &WeightProfile::benchmark(BitWidth::W4)).unwrap();
    let compiled = compile(&model, &RistrettoConfig::paper_default()).unwrap();
    let (c, h, w) = compiled.input();
    let inputs: Vec<_> = (0..3u64)
        .map(|i| {
            let mut igen = WorkloadGen::new(900 + i);
            igen.activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
                .unwrap()
        })
        .collect();
    for threads in [1, 4] {
        with_threads(threads, || {
            let warm = Session::new(compiled.clone());
            for input in &inputs {
                let reused = warm.run(input).unwrap();
                let cold = Session::new(compiled.clone()).run(input).unwrap();
                assert_eq!(
                    reused.output, cold.output,
                    "warm scratch changed the output at {threads} threads"
                );
                assert_eq!(
                    reused.traces, cold.traces,
                    "warm scratch changed the traces at {threads} threads"
                );
            }
        });
    }
}

#[test]
fn session_steady_state_allocates_no_accumulator_planes() {
    // The zero-allocation invariant of the scratch arena: after the first
    // input has sized every layer's pool, further `Session::run` calls
    // perform no accumulator-plane heap allocations at all. Serial
    // execution keeps the pool's peak demand deterministic.
    let mini = MiniNetwork::try_new(NetworkId::ResNet18).unwrap();
    let mut gen = WorkloadGen::new(223);
    let model =
        NetworkModel::from_mini(&mini, &mut gen, &WeightProfile::benchmark(BitWidth::W4)).unwrap();
    let compiled = compile(&model, &RistrettoConfig::paper_default()).unwrap();
    let (c, h, w) = compiled.input();
    with_threads(1, || {
        let session = Session::new(compiled.clone());
        assert_eq!(session.scratch_plane_allocations(), 0);
        let mut igen = WorkloadGen::new(501);
        let first = igen
            .activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
            .unwrap();
        session.run(&first).unwrap();
        let after_first = session.scratch_plane_allocations();
        assert!(after_first > 0, "first run must populate the pools");
        for seed in 0..4u64 {
            let mut igen = WorkloadGen::new(600 + seed);
            let input = igen
                .activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
                .unwrap();
            session.run(&input).unwrap();
            assert_eq!(
                session.scratch_plane_allocations(),
                after_first,
                "steady-state run allocated accumulator planes"
            );
        }
        // A clone shares the same arenas: no fresh pools, no fresh planes.
        let clone = session.clone();
        session.run(&first).unwrap();
        assert_eq!(clone.scratch_plane_allocations(), after_first);
    });
}
