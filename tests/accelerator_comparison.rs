//! Cross-accelerator integration tests: the qualitative orderings the
//! paper's evaluation rests on must hold end-to-end on whole synthetic
//! networks.

use ristretto::baselines::laconic::LaconicLatency;
use ristretto::baselines::prelude::*;
use ristretto::qnn::models::NetworkId;
use ristretto::qnn::quant::BitWidth;
use ristretto::qnn::workload::{NetworkStats, PrecisionPolicy};
use ristretto::ristretto_sim::analytic::RistrettoSim;
use ristretto::ristretto_sim::config::RistrettoConfig;

fn stats(bits: BitWidth) -> NetworkStats {
    NetworkStats::generate(NetworkId::AlexNet, PrecisionPolicy::Uniform(bits), 2, 99)
}

#[test]
fn everything_is_deterministic() {
    let a = stats(BitWidth::W4);
    let b = stats(BitWidth::W4);
    assert_eq!(a, b);
    let sim = RistrettoSim::new(RistrettoConfig::paper_default());
    assert_eq!(sim.simulate_network(&a), sim.simulate_network(&b));
    let sp = SparTen::paper_default();
    assert_eq!(sp.simulate_network(&a), sp.simulate_network(&b));
}

#[test]
fn ristretto_outpaces_every_baseline_in_raw_cycles() {
    // With equal 2b-multiplier budget (1024) Ristretto's sparse dataflow
    // should be fastest in raw cycles on a pruned 4-bit model.
    let net = stats(BitWidth::W4);
    let r = RistrettoSim::new(RistrettoConfig::paper_default()).simulate_network(&net);
    let bf = BitFusion::paper_default().simulate_network(&net);
    let lac = Laconic::paper_default().simulate_network(&net);
    let sp = SparTen::paper_default().simulate_network(&net);
    assert!(r.total_cycles() < bf.total_cycles(), "vs Bit Fusion");
    assert!(r.total_cycles() < lac.total_cycles(), "vs Laconic");
    assert!(r.total_cycles() < sp.total_cycles(), "vs SparTen");
}

#[test]
fn ristretto_ns_tracks_bitfusion() {
    // §V-B: with sparsity disabled, Ristretto-ns performs close to Bit
    // Fusion (same effective throughput per multiplier).
    for bits in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
        let net = stats(bits);
        let rns =
            RistrettoSim::new(RistrettoConfig::paper_default().non_sparse()).simulate_network(&net);
        let bf = BitFusion::paper_default().simulate_network(&net);
        let ratio = rns.total_cycles() as f64 / bf.total_cycles() as f64;
        assert!(
            (0.4..2.5).contains(&ratio),
            "{bits}: ns/BF cycle ratio {ratio}"
        );
    }
}

#[test]
fn laconic_latency_mode_ordering_holds_network_wide() {
    let net = stats(BitWidth::W8);
    let lac = Laconic::paper_default();
    let mut totals = [0u64; 3];
    for (i, mode) in [
        LaconicLatency::Theoretical,
        LaconicLatency::AveragePe,
        LaconicLatency::Tile,
    ]
    .into_iter()
    .enumerate()
    {
        totals[i] = net
            .layers
            .iter()
            .map(|l| lac.simulate_layer_mode(l, mode).cycles)
            .sum::<u64>();
    }
    assert!(
        totals[0] <= totals[1] && totals[1] <= totals[2],
        "{totals:?}"
    );
}

#[test]
fn compressed_traffic_beats_dense_traffic() {
    // Ristretto's COO-2D compression must move fewer DRAM bits than the
    // dense baselines on a sparse model.
    let net = stats(BitWidth::W4);
    let r = RistrettoSim::new(RistrettoConfig::paper_default()).simulate_network(&net);
    let bf = BitFusion::paper_default().simulate_network(&net);
    let r_bits: u64 = r.layers.iter().map(|l| l.dram_bits).sum();
    let b_bits: u64 = bf.layers.iter().map(|l| l.dram_bits).sum();
    assert!(r_bits < b_bits, "Ristretto {r_bits} vs Bit Fusion {b_bits}");
}

#[test]
fn precision_scaling_directions_match_table_v() {
    // Table V: Bit Fusion and Laconic scale with precision; SparTen does
    // not (fixed 8b datapath); Ristretto scales and exploits sparsity.
    let c8 = stats(BitWidth::W8);
    let c2 = stats(BitWidth::W2);
    let bf = BitFusion::paper_default();
    let sp = SparTen::paper_default();
    let r = RistrettoSim::new(RistrettoConfig::paper_default());

    let bf_gain = bf.simulate_network(&c8).total_cycles() as f64
        / bf.simulate_network(&c2).total_cycles() as f64;
    assert!(
        bf_gain > 4.0,
        "Bit Fusion 8b->2b gain {bf_gain} (ideal 16x)"
    );

    let r_gain = r.simulate_network(&c8).total_cycles() as f64
        / r.simulate_network(&c2).total_cycles() as f64;
    assert!(r_gain > 3.0, "Ristretto 8b->2b gain {r_gain}");

    // SparTen gains only from the sparsity difference, far less than the
    // precision-scalable machines.
    let sp_gain = sp.simulate_network(&c8).total_cycles() as f64
        / sp.simulate_network(&c2).total_cycles() as f64;
    assert!(
        sp_gain < bf_gain,
        "SparTen gain {sp_gain} vs Bit Fusion {bf_gain}"
    );
}

#[test]
fn reports_are_internally_consistent() {
    let net = stats(BitWidth::W4);
    for report in [
        BitFusion::paper_default().simulate_network(&net),
        Laconic::paper_default().simulate_network(&net),
        SparTen::paper_default().simulate_network(&net),
        SparTenMp::paper_default().simulate_network(&net),
    ] {
        assert_eq!(
            report.layers.len(),
            net.layers.len(),
            "{}",
            report.accelerator
        );
        for l in &report.layers {
            assert!(
                l.cycles > 0,
                "{}: {} has zero cycles",
                report.accelerator,
                l.name
            );
            assert!(l.energy.total_pj() > 0.0);
        }
    }
}
