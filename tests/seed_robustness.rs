//! Seed robustness: the evaluation's qualitative conclusions must hold for
//! *any* workload seed, not just the harness default — guarding the
//! reproduction against seed cherry-picking.

use ristretto::baselines::prelude::*;
use ristretto::qnn::models::NetworkId;
use ristretto::qnn::quant::BitWidth;
use ristretto::qnn::workload::{NetworkStats, PrecisionPolicy};
use ristretto::ristretto_sim::analytic::RistrettoSim;
use ristretto::ristretto_sim::config::RistrettoConfig;

const SEEDS: [u64; 3] = [1, 777, 424242];

#[test]
fn ristretto_beats_bitfusion_for_every_seed() {
    let sim = RistrettoSim::new(RistrettoConfig::paper_default());
    let bf = BitFusion::paper_default();
    for seed in SEEDS {
        for bits in [BitWidth::W8, BitWidth::W2] {
            let net = NetworkStats::generate(
                NetworkId::GoogLeNet,
                PrecisionPolicy::Uniform(bits),
                2,
                seed,
            );
            let r = sim.simulate_network(&net);
            let b = bf.simulate_network(&net);
            assert!(
                r.total_cycles() * 2 < b.total_cycles(),
                "seed {seed} {bits}: {} vs {}",
                r.total_cycles(),
                b.total_cycles()
            );
            assert!(
                r.total_energy().total_pj() < b.total_energy().total_pj(),
                "seed {seed} {bits}: energy"
            );
        }
    }
}

#[test]
fn sparten_gap_grows_at_low_precision_for_every_seed() {
    let sim = RistrettoSim::new(RistrettoConfig::half_width());
    let sp = SparTen::paper_default();
    for seed in SEEDS {
        let speedup = |bits| {
            let net = NetworkStats::generate(
                NetworkId::ResNet18,
                PrecisionPolicy::Uniform(bits),
                2,
                seed,
            );
            sp.simulate_network(&net).total_cycles() as f64
                / sim.simulate_network(&net).total_cycles() as f64
        };
        let s2 = speedup(BitWidth::W2);
        let s8 = speedup(BitWidth::W8);
        assert!(s2 > s8, "seed {seed}: 2b {s2} vs 8b {s8}");
        assert!(s2 > 2.0, "seed {seed}: 2b speedup {s2}");
    }
}

#[test]
fn sparsity_trend_of_fig1_for_every_seed() {
    use ristretto::qnn::sparsity::value_density;
    use ristretto::qnn::workload::{WeightProfile, WorkloadGen};
    for seed in SEEDS {
        let mut gen = WorkloadGen::new(seed);
        let mut prev = -1.0;
        for bits in [BitWidth::W8, BitWidth::W6, BitWidth::W4, BitWidth::W2] {
            let w = gen.weight_values(30_000, &WeightProfile::unpruned(bits));
            let sparsity = 1.0 - value_density(&w);
            assert!(
                sparsity > prev - 0.02,
                "seed {seed} {bits}: {sparsity} after {prev}"
            );
            prev = sparsity;
        }
    }
}

#[test]
fn balancing_verdict_for_every_seed() {
    use ristretto::ristretto_sim::balance::BalanceStrategy;
    for seed in SEEDS {
        let net = NetworkStats::generate(
            NetworkId::ResNet18,
            PrecisionPolicy::Uniform(BitWidth::W4),
            2,
            seed,
        );
        let cycles = |strategy| {
            let cfg = RistrettoConfig::paper_default().with_balancing(strategy);
            RistrettoSim::new(cfg).simulate_network(&net).total_cycles()
        };
        let none = cycles(BalanceStrategy::None);
        let wa = cycles(BalanceStrategy::WeightActivation);
        assert!(wa < none, "seed {seed}: w/a {wa} vs none {none}");
    }
}
