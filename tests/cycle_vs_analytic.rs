//! Cross-validation between the cycle-level tile simulator, the functional
//! intersection engine and the closed-form Eq 3–5 model (DESIGN.md
//! invariant 7).

use ristretto::atomstream::atom::AtomBits;
use ristretto::atomstream::compress::{compress_activations, compress_weights};
use ristretto::atomstream::conv_csc::{conv2d_csc, CscConfig};
use ristretto::atomstream::cycles::ideal_steps;
use ristretto::atomstream::flatten::{flatten_kernel_channel, flatten_tile};
use ristretto::qnn::layers::ConvLayer;
use ristretto::qnn::quant::BitWidth;
use ristretto::qnn::workload::{ActivationProfile, SyntheticLayer, WeightProfile, WorkloadGen};
use ristretto::ristretto_sim::config::RistrettoConfig;
use ristretto::ristretto_sim::tile::TileSim;

fn small_layer(seed: u64) -> SyntheticLayer {
    let layer = ConvLayer::conv("xval", 4, 8, 3, 1, 1, 8, 8).unwrap();
    let mut gen = WorkloadGen::new(seed);
    SyntheticLayer::generate(
        &layer,
        &WeightProfile::benchmark(BitWidth::W4),
        &ActivationProfile::new(BitWidth::W8),
        &mut gen,
    )
}

#[test]
fn tile_sim_matches_closed_form_per_channel() {
    let s = small_layer(11);
    let cfg = RistrettoConfig {
        multipliers: 8,
        ..RistrettoConfig::paper_default()
    };
    let sim = TileSim::new(&cfg);
    for ci in 0..4 {
        let wf = flatten_kernel_channel(&s.kernels, ci).unwrap();
        let ws = compress_weights(&wf, 4, AtomBits::B2).unwrap();
        let af = flatten_tile(&s.fmap, ci, 0, 0, 8, 8);
        let as_ = compress_activations(&af, 8, AtomBits::B2).unwrap();
        if ws.is_empty() || as_.is_empty() {
            continue;
        }
        let report = sim.run(&ws, &as_);
        let ideal = ideal_steps(as_.len() as u64, ws.len() as u64, 8);
        // Stall-free cycles equal Eq 3 within the FIFO residue.
        assert!(
            report.ideal_cycles() >= ideal && report.ideal_cycles() <= ideal + 8,
            "channel {ci}: {} vs ideal {ideal}",
            report.ideal_cycles()
        );
        assert_eq!(report.atom_mults, as_.len() as u64 * ws.len() as u64);
    }
}

#[test]
fn functional_csc_steps_match_sum_of_tile_ideals() {
    let s = small_layer(23);
    let n = 8usize;
    let cfg = CscConfig {
        multipliers: n,
        tile_h: 4,
        tile_w: 4,
        ..CscConfig::default()
    };
    let csc = conv2d_csc(
        &s.fmap,
        &s.kernels,
        s.layer.geometry(),
        BitWidth::W8,
        BitWidth::W4,
        &cfg,
    )
    .unwrap();

    // Recompute the expected total: per (channel, tile) intersection,
    // ideal_steps(t, S, N).
    let mut expected = 0u64;
    for ci in 0..4 {
        let wf = flatten_kernel_channel(&s.kernels, ci).unwrap();
        let ws = compress_weights(&wf, 4, AtomBits::B2).unwrap();
        if ws.is_empty() {
            continue;
        }
        for y0 in (0..8).step_by(4) {
            for x0 in (0..8).step_by(4) {
                let af = flatten_tile(&s.fmap, ci, y0, x0, 4, 4);
                let as_ = compress_activations(&af, 8, AtomBits::B2).unwrap();
                expected += ideal_steps(as_.len() as u64, ws.len() as u64, n as u64);
            }
        }
    }
    assert_eq!(csc.stats.intersect.steps, expected);
}

#[test]
fn analytic_model_on_measured_stats_tracks_cycle_level_core() {
    use ristretto::qnn::workload::LayerStats;
    use ristretto::ristretto_sim::analytic::RistrettoSim;
    use ristretto::ristretto_sim::core::CoreSim;

    // Same materialized layer through both paths: the analytic Eq 3-5
    // model fed *exact* measured statistics, and the cycle-level
    // multi-tile core. Agreement within the dropped ε / per-tile-drain /
    // stall terms validates the whole modelling chain.
    let layer = ConvLayer::conv("xval2", 8, 8, 3, 1, 1, 8, 8).unwrap();
    let mut gen = WorkloadGen::new(91);
    let s = SyntheticLayer::generate(
        &layer,
        &WeightProfile::benchmark(BitWidth::W4),
        &ActivationProfile::new(BitWidth::W8),
        &mut gen,
    );
    let cfg = RistrettoConfig {
        tiles: 4,
        multipliers: 8,
        tile_h: 8,
        tile_w: 8,
        ..RistrettoConfig::paper_default()
    };
    let stats = LayerStats::measure(&layer, &s.fmap, &s.kernels, BitWidth::W8, BitWidth::W4, 2);
    let analytic = RistrettoSim::new(cfg).simulate_layer(&stats, false);
    let core = CoreSim::try_new(cfg)
        .unwrap()
        .run_layer(&s.fmap, &s.kernels, 8, 4)
        .unwrap();
    let (a, c) = (analytic.cycles as f64, core.makespan as f64);
    let ratio = c / a;
    assert!(
        (0.8..1.4).contains(&ratio),
        "core {c} vs analytic {a} (ratio {ratio:.2})"
    );
}

#[test]
fn analytic_layer_cycles_bracket_tile_sim() {
    // The analytic model's per-channel metric T·⌈S/N⌉ should agree with
    // the cycle-level tile run on a whole (untiled) channel to within the
    // epsilon + FIFO residue terms.
    let s = small_layer(37);
    let n = 16u64;
    let cfg = RistrettoConfig {
        multipliers: 16,
        ..RistrettoConfig::paper_default()
    };
    let sim = TileSim::new(&cfg);
    for ci in 0..4 {
        let wf = flatten_kernel_channel(&s.kernels, ci).unwrap();
        let ws = compress_weights(&wf, 4, AtomBits::B2).unwrap();
        let af = flatten_tile(&s.fmap, ci, 0, 0, 8, 8);
        let as_ = compress_activations(&af, 8, AtomBits::B2).unwrap();
        if ws.is_empty() || as_.is_empty() {
            continue;
        }
        let analytic =
            ristretto::atomstream::cycles::tile_cycles(as_.len() as u64, ws.len() as u64, n);
        let report = sim.run(&ws, &as_);
        // Eq 5 ignores crossbar backpressure, as the paper does; compare
        // the stall-free cycles and bound the stalls separately.
        let stall_free = report.ideal_cycles();
        let hi = analytic + n + 16; // epsilon bound + FIFO residue
        assert!(
            stall_free >= analytic && stall_free <= hi,
            "channel {ci}: stall-free {stall_free}, analytic {analytic}"
        );
        assert!(
            report.stall_cycles * 3 <= report.cycles,
            "channel {ci}: stalls {} of {} cycles",
            report.stall_cycles,
            report.cycles
        );
    }
}
