//! End-to-end functional inference of the six miniature benchmark networks
//! through the condensed streaming computation, checked bit-exactly
//! against the dense reference at every precision policy.

use ristretto::atomstream::conv_csc::CscConfig;
use ristretto::qnn::mini::MiniNetwork;
use ristretto::qnn::models::NetworkId;
use ristretto::qnn::quant::BitWidth;
use ristretto::qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};
use ristretto::ristretto_sim::pipeline::{FunctionalPipeline, PipelineLayer};

fn build_pipeline(
    mini: &MiniNetwork,
    w_bits: BitWidth,
    a_bits: BitWidth,
    gen: &mut WorkloadGen,
) -> FunctionalPipeline {
    let wp = WeightProfile::benchmark(w_bits);
    let layers = mini
        .stages
        .iter()
        .map(|stage| {
            let l = &stage.layer;
            PipelineLayer {
                name: l.name.clone(),
                kernels: gen
                    .weights(l.out_channels, l.in_channels, l.kernel, l.kernel, &wp)
                    .expect("valid kernel shape"),
                geom: l.geometry(),
                w_bits,
                a_bits,
                requant_shift: 5,
                out_bits: a_bits.bits(),
                pool: stage.pool,
            }
        })
        .collect();
    FunctionalPipeline::new(
        layers,
        CscConfig {
            tile_h: 4,
            tile_w: 4,
            ..CscConfig::default()
        },
    )
}

#[test]
fn all_six_minis_run_csc_inference_exactly() {
    for id in NetworkId::ALL {
        let mini = MiniNetwork::new(id);
        mini.validate_chaining().unwrap();
        let mut gen = WorkloadGen::new(7000 + id as u64);
        let (c, h, w) = mini.input;
        let input = gen
            .activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
            .unwrap();
        let pipeline = build_pipeline(&mini, BitWidth::W4, BitWidth::W8, &mut gen);
        let (csc_out, traces) = pipeline.run(&input).expect("CSC inference");
        let dense_out = pipeline
            .run_dense_reference(&input)
            .expect("dense inference");
        assert_eq!(csc_out, dense_out, "{id}");
        assert_eq!(traces.len(), mini.stages.len(), "{id}");
        // The classifier output has 10 channels at 1x1... or small spatial.
        assert_eq!(csc_out.channels(), 10, "{id}");
    }
}

#[test]
fn minis_run_at_low_precision_too() {
    for (w_bits, a_bits) in [(BitWidth::W2, BitWidth::W2), (BitWidth::W2, BitWidth::W4)] {
        let mini = MiniNetwork::new(NetworkId::ResNet18);
        let mut gen = WorkloadGen::new(8100 + w_bits.bits() as u64);
        let (c, h, w) = mini.input;
        let input = gen
            .activations(c, h, w, &ActivationProfile::new(a_bits))
            .unwrap();
        let pipeline = build_pipeline(&mini, w_bits, a_bits, &mut gen);
        let (csc_out, _) = pipeline.run(&input).unwrap();
        let dense_out = pipeline.run_dense_reference(&input).unwrap();
        assert_eq!(csc_out, dense_out, "{w_bits}/{a_bits}");
    }
}

#[test]
fn mini_traces_feed_balancer_statistics() {
    use ristretto::ristretto_sim::balance::{balance, BalanceStrategy, ChannelWorkload};
    let mini = MiniNetwork::new(NetworkId::Vgg16);
    let mut gen = WorkloadGen::new(8200);
    let (c, h, w) = mini.input;
    let input = gen
        .activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
        .unwrap();
    let pipeline = build_pipeline(&mini, BitWidth::W4, BitWidth::W8, &mut gen);
    let (_, traces) = pipeline.run(&input).unwrap();
    // Use a mid-layer's PPU statistics as the next layer's balancer input,
    // exactly the §IV-E flow.
    let trace = &traces[2];
    let workloads: Vec<ChannelWorkload> = trace
        .out_atoms_per_channel
        .iter()
        .enumerate()
        .map(|(channel, &atoms)| ChannelWorkload {
            channel,
            act_atoms: atoms,
            weight_atoms: 64,
        })
        .collect();
    let a = balance(&workloads, 4, 16, BalanceStrategy::WeightActivation);
    assert_eq!(a.groups.len(), 4);
    assert!(a.utilization() > 0.8);
}
