//! Serde round-trips: every report and workload type the harness persists
//! (`repro --json`) must survive JSON serialization unchanged, so saved
//! experiment results can be reloaded and compared across runs.

use ristretto::baselines::prelude::*;
use ristretto::qnn::models::NetworkId;
use ristretto::qnn::quant::BitWidth;
use ristretto::qnn::workload::{NetworkStats, PrecisionPolicy};
use ristretto::ristretto_sim::analytic::RistrettoSim;
use ristretto::ristretto_sim::config::RistrettoConfig;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

/// For float-bearing types, JSON equality after one round-trip is the
/// stable property (f64 text rendering can normalize e.g. `1e300` forms):
/// serialize → deserialize → serialize must be a fixed point.
fn json_fixed_point<T>(value: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let once = serde_json::to_string(value).expect("serialize");
    let back: T = serde_json::from_str(&once).expect("deserialize");
    let twice = serde_json::to_string(&back).expect("re-serialize");
    assert_eq!(once, twice, "JSON round-trip must be a fixed point");
}

fn small_net() -> NetworkStats {
    NetworkStats::generate(
        NetworkId::AlexNet,
        PrecisionPolicy::Uniform(BitWidth::W4),
        2,
        5,
    )
}

#[test]
fn network_stats_roundtrip() {
    let stats = small_net();
    json_fixed_point(&stats);
    let back = roundtrip(&stats);
    // Integer-valued fields are exact.
    assert_eq!(back.id, stats.id);
    assert_eq!(back.layers.len(), stats.layers.len());
    for (a, b) in back.layers.iter().zip(&stats.layers) {
        assert_eq!(a.act_atoms_per_channel, b.act_atoms_per_channel);
        assert_eq!(a.weight_sample, b.weight_sample);
    }
}

#[test]
fn ristretto_report_roundtrip() {
    let report = RistrettoSim::new(RistrettoConfig::paper_default()).simulate_network(&small_net());
    json_fixed_point(&report);
    let back = roundtrip(&report);
    assert_eq!(back.total_cycles(), report.total_cycles());
    for (a, b) in back.layers.iter().zip(&report.layers) {
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.atom_mults, b.atom_mults);
        assert_eq!(a.dram_bits, b.dram_bits);
    }
}

#[test]
fn baseline_reports_roundtrip() {
    let net = small_net();
    for report in [
        BitFusion::paper_default().simulate_network(&net),
        SparTen::paper_default().simulate_network(&net),
    ] {
        json_fixed_point(&report);
        let back = roundtrip(&report);
        assert_eq!(back.total_cycles(), report.total_cycles());
        assert_eq!(back.accelerator, report.accelerator);
    }
}

#[test]
fn configs_roundtrip() {
    let cfg = RistrettoConfig::paper_default();
    assert_eq!(roundtrip(&cfg), cfg);
    let bf = BitFusion::paper_default();
    assert_eq!(roundtrip(&bf), bf);
    let lac = Laconic::paper_default();
    assert_eq!(roundtrip(&lac), lac);
}

#[test]
fn tensors_roundtrip() {
    use ristretto::qnn::tensor::{Tensor3, Tensor4};
    let t = Tensor3::from_vec(2, 3, 4, (0..24).collect()).unwrap();
    assert_eq!(roundtrip(&t), t);
    let k = Tensor4::from_vec(2, 2, 2, 2, (0..16).map(|v| v - 8).collect()).unwrap();
    assert_eq!(roundtrip(&k), k);
}

#[test]
fn streams_roundtrip() {
    use ristretto::atomstream::atom::AtomBits;
    use ristretto::atomstream::compress::compress_activations;
    use ristretto::atomstream::flatten::FlatActivation;
    let flat = vec![
        FlatActivation {
            value: 29,
            x: 1,
            y: 2,
        },
        FlatActivation {
            value: 200,
            x: 3,
            y: 0,
        },
    ];
    let stream = compress_activations(&flat, 8, AtomBits::B2).unwrap();
    assert_eq!(roundtrip(&stream), stream);
}

#[test]
fn weight_streams_wire_roundtrip_at_every_granularity_and_width() {
    // The binary artifact layer must round-trip compiled weight streams
    // for the full cross product the compiler accepts: every atom
    // granularity (1–8 bits) times every operand width (2–16 bits).
    use ristretto::atomstream::atom::AtomBits;
    use ristretto::atomstream::conv_csc::WeightStreamSet;
    use ristretto::atomstream::wire::{read_weight_stream_set, write_weight_stream_set};
    use ristretto::atomstream::wire::{WireReader, WireWriter};
    use ristretto::qnn::tensor::Tensor4;

    let kernels = Tensor4::from_vec(
        2,
        2,
        3,
        3,
        (0..36).map(|i| [0, 1, 0, -1][i as usize % 4]).collect(),
    )
    .unwrap();
    for gran in 1u8..=8 {
        for bits in 2u8..=16 {
            let atom_bits = AtomBits::new(gran).unwrap();
            let w_bits = ristretto::qnn::quant::BitWidth::new(bits).unwrap();
            let set = WeightStreamSet::compile(&kernels, w_bits, atom_bits).unwrap();

            let mut w = WireWriter::new();
            write_weight_stream_set(&mut w, &set);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes, "weights");
            let back = read_weight_stream_set(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, set, "gran {gran}, width {bits}");

            // Determinism: re-encoding the decoded set is byte-identical
            // (the content-addressed cache depends on this).
            let mut w2 = WireWriter::new();
            write_weight_stream_set(&mut w2, &back);
            assert_eq!(w2.into_bytes(), bytes, "gran {gran}, width {bits}");
        }
    }
}

#[test]
fn cache_hit_sessions_allocate_no_accumulator_planes_in_steady_state() {
    // A session over a cache-hit (deserialized) network must keep the
    // scratch-arena guarantee of a freshly compiled one: after the first
    // input sizes the pools, further runs allocate zero accumulator
    // planes.
    use ristretto::qnn::mini::MiniNetwork;
    use ristretto::qnn::models::NetworkId;
    use ristretto::qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};
    use ristretto::ristretto_sim::engine::{NetworkModel, Session};
    use ristretto::ristretto_sim::modelcache::ModelCache;

    let mini = MiniNetwork::try_new(NetworkId::AlexNet).unwrap();
    let mut gen = WorkloadGen::new(1203);
    let model =
        NetworkModel::from_mini(&mini, &mut gen, &WeightProfile::benchmark(BitWidth::W4)).unwrap();
    let cfg = RistrettoConfig::paper_default();

    let dir = std::env::temp_dir().join(format!(
        "ristretto_serialization_cache_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ModelCache::new(&dir);
    cache.compile_cached(&model, &cfg).unwrap(); // populate
    let hit = cache.compile_cached(&model, &cfg).unwrap(); // load from disk
    let _ = std::fs::remove_dir_all(&dir);

    let session = Session::new(hit.clone());
    assert_eq!(session.scratch_plane_allocations(), 0);
    let (c, h, w) = hit.input();
    let mut igen = WorkloadGen::new(77);
    let first = igen
        .activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
        .unwrap();
    session.run(&first).unwrap();
    let after_first = session.scratch_plane_allocations();
    assert!(after_first > 0, "first run must populate the pools");
    for seed in 0..3u64 {
        let mut igen = WorkloadGen::new(80 + seed);
        let input = igen
            .activations(c, h, w, &ActivationProfile::new(BitWidth::W8))
            .unwrap();
        session.run(&input).unwrap();
        assert_eq!(
            session.scratch_plane_allocations(),
            after_first,
            "steady-state cache-hit run allocated accumulator planes"
        );
    }
}
