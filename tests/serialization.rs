//! Serde round-trips: every report and workload type the harness persists
//! (`repro --json`) must survive JSON serialization unchanged, so saved
//! experiment results can be reloaded and compared across runs.

use ristretto::baselines::prelude::*;
use ristretto::qnn::models::NetworkId;
use ristretto::qnn::quant::BitWidth;
use ristretto::qnn::workload::{NetworkStats, PrecisionPolicy};
use ristretto::ristretto_sim::analytic::RistrettoSim;
use ristretto::ristretto_sim::config::RistrettoConfig;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

/// For float-bearing types, JSON equality after one round-trip is the
/// stable property (f64 text rendering can normalize e.g. `1e300` forms):
/// serialize → deserialize → serialize must be a fixed point.
fn json_fixed_point<T>(value: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let once = serde_json::to_string(value).expect("serialize");
    let back: T = serde_json::from_str(&once).expect("deserialize");
    let twice = serde_json::to_string(&back).expect("re-serialize");
    assert_eq!(once, twice, "JSON round-trip must be a fixed point");
}

fn small_net() -> NetworkStats {
    NetworkStats::generate(
        NetworkId::AlexNet,
        PrecisionPolicy::Uniform(BitWidth::W4),
        2,
        5,
    )
}

#[test]
fn network_stats_roundtrip() {
    let stats = small_net();
    json_fixed_point(&stats);
    let back = roundtrip(&stats);
    // Integer-valued fields are exact.
    assert_eq!(back.id, stats.id);
    assert_eq!(back.layers.len(), stats.layers.len());
    for (a, b) in back.layers.iter().zip(&stats.layers) {
        assert_eq!(a.act_atoms_per_channel, b.act_atoms_per_channel);
        assert_eq!(a.weight_sample, b.weight_sample);
    }
}

#[test]
fn ristretto_report_roundtrip() {
    let report = RistrettoSim::new(RistrettoConfig::paper_default()).simulate_network(&small_net());
    json_fixed_point(&report);
    let back = roundtrip(&report);
    assert_eq!(back.total_cycles(), report.total_cycles());
    for (a, b) in back.layers.iter().zip(&report.layers) {
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.atom_mults, b.atom_mults);
        assert_eq!(a.dram_bits, b.dram_bits);
    }
}

#[test]
fn baseline_reports_roundtrip() {
    let net = small_net();
    for report in [
        BitFusion::paper_default().simulate_network(&net),
        SparTen::paper_default().simulate_network(&net),
    ] {
        json_fixed_point(&report);
        let back = roundtrip(&report);
        assert_eq!(back.total_cycles(), report.total_cycles());
        assert_eq!(back.accelerator, report.accelerator);
    }
}

#[test]
fn configs_roundtrip() {
    let cfg = RistrettoConfig::paper_default();
    assert_eq!(roundtrip(&cfg), cfg);
    let bf = BitFusion::paper_default();
    assert_eq!(roundtrip(&bf), bf);
    let lac = Laconic::paper_default();
    assert_eq!(roundtrip(&lac), lac);
}

#[test]
fn tensors_roundtrip() {
    use ristretto::qnn::tensor::{Tensor3, Tensor4};
    let t = Tensor3::from_vec(2, 3, 4, (0..24).collect()).unwrap();
    assert_eq!(roundtrip(&t), t);
    let k = Tensor4::from_vec(2, 2, 2, 2, (0..16).map(|v| v - 8).collect()).unwrap();
    assert_eq!(roundtrip(&k), k);
}

#[test]
fn streams_roundtrip() {
    use ristretto::atomstream::atom::AtomBits;
    use ristretto::atomstream::compress::compress_activations;
    use ristretto::atomstream::flatten::FlatActivation;
    let flat = vec![
        FlatActivation {
            value: 29,
            x: 1,
            y: 2,
        },
        FlatActivation {
            value: 200,
            x: 3,
            y: 0,
        },
    ];
    let stream = compress_activations(&flat, 8, AtomBits::B2).unwrap();
    assert_eq!(roundtrip(&stream), stream);
}
