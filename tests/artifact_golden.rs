//! Golden-artifact compatibility gate: a checked-in artifact encoded by
//! an earlier build must keep decoding — and re-encoding byte-identically
//! — in every later build. Any change to the wire layout that is not
//! accompanied by a `FORMAT_VERSION` bump fails here (and in the CI
//! `artifact-compat` job) before it can corrupt real caches.
//!
//! To regenerate after an *intentional* format change (bump
//! `FORMAT_VERSION` first):
//!
//! ```text
//! cargo test --test artifact_golden -- --ignored regenerate_golden_artifact
//! ```

use qnn::conv::ConvGeometry;
use qnn::quant::BitWidth;
use qnn::tensor::{Tensor3, Tensor4};
use ristretto_sim::artifact;
use ristretto_sim::config::RistrettoConfig;
use ristretto_sim::engine::{compile, NetworkModel, Session};
use ristretto_sim::pipeline::PipelineLayer;
use std::path::PathBuf;
use std::sync::Arc;

/// The frozen network behind `tests/golden/tiny.rma`. Everything here is
/// written out literally — no RNG, no shared helpers — so the golden
/// bytes depend only on the wire format itself.
fn golden_network() -> (NetworkModel, RistrettoConfig) {
    let kernels = Tensor4::from_vec(
        2,
        2,
        3,
        3,
        vec![
            // oc 0, ic 0..2
            1, 0, -2, 0, 3, 0, -1, 0, 2, //
            0, -1, 0, 2, 0, -3, 0, 1, 0, //
            // oc 1, ic 0..2
            0, 2, 0, -3, 0, 1, 0, -1, 0, //
            3, 0, -1, 0, 2, 0, -2, 0, 1, //
        ],
    )
    .unwrap();
    let layer = PipelineLayer {
        name: "golden0".to_string(),
        kernels,
        geom: ConvGeometry::unit_stride(1),
        w_bits: BitWidth::W4,
        a_bits: BitWidth::W4,
        requant_shift: 2,
        out_bits: 4,
        pool: None,
    };
    let model = NetworkModel::new("golden-tiny", (2, 5, 5), vec![layer]);
    (model, RistrettoConfig::paper_default())
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("tiny.rma")
}

#[test]
fn golden_artifact_still_decodes_and_reencodes_identically() {
    let bytes = std::fs::read(golden_path()).expect(
        "tests/golden/tiny.rma is missing — regenerate it with \
         `cargo test --test artifact_golden -- --ignored regenerate_golden_artifact`",
    );
    let decoded = artifact::decode(&bytes).expect(
        "the checked-in golden artifact no longer decodes: the wire format \
         drifted without a FORMAT_VERSION bump",
    );
    assert_eq!(
        artifact::encode(&decoded),
        bytes,
        "re-encoding the golden artifact changed its bytes: the wire \
         format drifted without a FORMAT_VERSION bump"
    );

    // The decoded network must equal a fresh compile of the frozen model
    // and run byte-identically to it.
    let (model, cfg) = golden_network();
    let net = compile(&model, &cfg).unwrap();
    assert_eq!(
        *net, decoded,
        "golden artifact decodes to a different network"
    );

    let input = Tensor3::from_vec(2, 5, 5, (0..50).map(|v| v % 7).collect()).unwrap();
    let from_disk = Session::new(Arc::new(decoded)).run(&input).unwrap();
    let from_memory = Session::new(net).run(&input).unwrap();
    assert_eq!(from_disk.output, from_memory.output);
    assert_eq!(from_disk.traces, from_memory.traces);
}

#[test]
#[ignore = "regenerates the golden artifact after an intentional format change"]
fn regenerate_golden_artifact() {
    let (model, cfg) = golden_network();
    let net = compile(&model, &cfg).unwrap();
    let path = golden_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, artifact::encode(&net)).unwrap();
    eprintln!("wrote {}", path.display());
}
