//! Simulate 4-bit ResNet-18 inference on Ristretto and all four baseline
//! accelerators, printing a per-layer cycle table and network totals.
//!
//! ```text
//! cargo run --release --example resnet_inference
//! ```

use ristretto::baselines::prelude::*;
use ristretto::qnn::models::NetworkId;
use ristretto::qnn::quant::BitWidth;
use ristretto::qnn::workload::{NetworkStats, PrecisionPolicy};
use ristretto::ristretto_sim::analytic::RistrettoSim;
use ristretto::ristretto_sim::config::RistrettoConfig;

fn main() {
    let net = NetworkStats::generate(
        NetworkId::ResNet18,
        PrecisionPolicy::Uniform(BitWidth::W4),
        2,
        2022,
    );

    let sim = RistrettoSim::new(RistrettoConfig::half_width());
    let ristretto = sim.simulate_network(&net);
    let bitfusion = BitFusion::paper_default().simulate_network(&net);
    let laconic = Laconic::paper_default().simulate_network(&net);
    let sparten = SparTen::paper_default().simulate_network(&net);
    let sparten_mp = SparTenMp::paper_default().simulate_network(&net);

    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "layer", "Ristretto", "Bit Fusion", "Laconic", "SparTen", "SparTen-mp"
    );
    for (i, layer) in ristretto.layers.iter().enumerate() {
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12}",
            layer.name,
            layer.cycles,
            bitfusion.layers[i].cycles,
            laconic.layers[i].cycles,
            sparten.layers[i].cycles,
            sparten_mp.layers[i].cycles,
        );
    }
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "TOTAL",
        ristretto.total_cycles(),
        bitfusion.total_cycles(),
        laconic.total_cycles(),
        sparten.total_cycles(),
        sparten_mp.total_cycles(),
    );
    println!();
    println!(
        "Ristretto mean tile utilization: {:.1}%",
        ristretto.mean_utilization() * 100.0
    );
    println!(
        "raw cycle speedups: vs Bit Fusion {:.2}x, vs Laconic {:.2}x, vs SparTen {:.2}x, vs SparTen-mp {:.2}x",
        bitfusion.total_cycles() as f64 / ristretto.total_cycles() as f64,
        laconic.total_cycles() as f64 / ristretto.total_cycles() as f64,
        sparten.total_cycles() as f64 / ristretto.total_cycles() as f64,
        sparten_mp.total_cycles() as f64 / ristretto.total_cycles() as f64,
    );
    println!(
        "energy vs Bit Fusion: {:.1}%  (compute/buffer/DRAM/leakage = {:.0}/{:.0}/{:.0}/{:.0} uJ)",
        ristretto
            .total_energy()
            .relative_to(&bitfusion.total_energy())
            * 100.0,
        ristretto.total_energy().compute_pj * 1e-6,
        ristretto.total_energy().buffer_pj * 1e-6,
        ristretto.total_energy().dram_pj * 1e-6,
        ristretto.total_energy().leakage_pj * 1e-6,
    );
}
