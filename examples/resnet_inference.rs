//! Simulate 4-bit ResNet-18 inference on Ristretto and four baseline
//! accelerators, sweeping every machine through the workspace-wide
//! [`Backend`] trait and printing a per-layer cycle table plus network
//! totals.
//!
//! ```text
//! cargo run --release --example resnet_inference
//! ```

use ristretto::baselines::prelude::*;
use ristretto::qnn::models::NetworkId;
use ristretto::qnn::quant::BitWidth;
use ristretto::qnn::workload::{NetworkStats, PrecisionPolicy};
use ristretto::ristretto_sim::analytic::RistrettoSim;
use ristretto::ristretto_sim::config::RistrettoConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = NetworkStats::generate(
        NetworkId::ResNet18,
        PrecisionPolicy::Uniform(BitWidth::W4),
        2,
        2022,
    );

    // Every machine — the analytic Ristretto model and the baselines —
    // sits behind the same trait, so the sweep is one loop over trait
    // objects instead of one hand-written call per accelerator.
    let sim = RistrettoSim::try_new(RistrettoConfig::half_width())?;
    let bitfusion = BitFusion::paper_default();
    let laconic = Laconic::paper_default();
    let sparten = SparTen::paper_default();
    let sparten_mp = SparTenMp::paper_default();
    let machines: Vec<&dyn Backend> = vec![&sim, &bitfusion, &laconic, &sparten, &sparten_mp];
    let reports: Vec<BaselineNetworkReport> =
        machines.iter().map(|m| m.simulate_network(&net)).collect();
    let ristretto = &reports[0];

    print!("{:<14}", "layer");
    for r in &reports {
        print!(" {:>12}", r.accelerator);
    }
    println!();
    for (i, layer) in ristretto.layers.iter().enumerate() {
        print!("{:<14}", layer.name);
        for r in &reports {
            print!(" {:>12}", r.layers[i].cycles);
        }
        println!();
    }
    print!("{:<14}", "TOTAL");
    for r in &reports {
        print!(" {:>12}", r.total_cycles());
    }
    println!();
    println!();

    println!(
        "Ristretto mean tile utilization: {:.1}%",
        sim.simulate_network(&net).mean_utilization() * 100.0
    );
    let speedups: Vec<String> = machines
        .iter()
        .zip(&reports)
        .skip(1)
        .map(|(m, r)| {
            let raw = r.total_cycles() as f64 / ristretto.total_cycles() as f64;
            let per_area = raw * (m.area_mm2() / machines[0].area_mm2());
            format!("vs {} {raw:.2}x ({per_area:.2}x/mm2)", m.name())
        })
        .collect();
    println!("cycle speedups: {}", speedups.join(", "));
    println!(
        "energy vs Bit Fusion: {:.1}%  (compute/buffer/DRAM/leakage = {:.0}/{:.0}/{:.0}/{:.0} uJ)",
        ristretto
            .total_energy()
            .relative_to(&reports[1].total_energy())
            * 100.0,
        ristretto.total_energy().compute_pj * 1e-6,
        ristretto.total_energy().buffer_pj * 1e-6,
        ristretto.total_energy().dram_pj * 1e-6,
        ristretto.total_energy().leakage_pj * 1e-6,
    );
    Ok(())
}
