//! Fault tolerance: inject deterministic bit flips into a running layer,
//! watch the online monitors contain them, and verify the recovered output
//! is byte-identical to the fault-free run.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use ristretto::qnn::conv::ConvGeometry;
use ristretto::qnn::prelude::*;
use ristretto::qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};
use ristretto::ristretto_sim::config::RistrettoConfig;
use ristretto::ristretto_sim::engine::{compile, EngineError, NetworkModel, Session};
use ristretto::ristretto_sim::fault::FaultConfig;
use ristretto::ristretto_sim::pipeline::PipelineLayer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic quantized layer: 8-bit activations, 4-bit weights.
    let mut gen = WorkloadGen::new(7);
    let fmap = gen.activations(4, 12, 12, &ActivationProfile::new(BitWidth::W8))?;
    let kernels = gen.weights(8, 4, 3, 3, &WeightProfile::benchmark(BitWidth::W4))?;
    let model = NetworkModel::new(
        "fault_tolerance",
        fmap.shape(),
        vec![PipelineLayer {
            name: "conv".to_string(),
            kernels,
            geom: ConvGeometry::unit_stride(1),
            w_bits: BitWidth::W4,
            a_bits: BitWidth::W8,
            requant_shift: 6,
            out_bits: 8,
            pool: None,
        }],
    );

    // --- 1. The fault-free baseline.
    let clean_cfg = RistrettoConfig::paper_default();
    let baseline = Session::new(compile(&model, &clean_cfg)?).run(&fmap)?;
    println!("baseline: clean run, {} traces", baseline.traces.len());

    // --- 2. Same layer under a seeded campaign: bit flips in every
    // injectable structure, monitors + tile-level recovery on.
    let campaign = FaultConfig::uniform(2022, 400);
    let faulty_cfg = RistrettoConfig::paper_default().with_faults(Some(campaign));
    let run = Session::new(compile(&model, &faulty_cfg)?).run(&fmap)?;
    println!(
        "campaign: {} injected, {} detected, {} tile retries, {} recovered, {} layer fallbacks",
        run.faults.total_injected(),
        run.faults.total_detected(),
        run.faults.retries,
        run.faults.recovered_tiles,
        run.faults.layer_fallbacks,
    );
    assert!(run.faults.total_injected() > 0, "campaign injected nothing");
    assert_eq!(
        run.output, baseline.output,
        "recovery must restore the fault-free output byte-for-byte"
    );
    println!("recovered output is byte-identical to the baseline");

    // --- 3. Recovery off: the same faults surface as a typed error naming
    // the structure and tile instead of a corrupted tensor.
    let brittle_cfg =
        RistrettoConfig::paper_default().with_faults(Some(campaign.with_recover(false)));
    match Session::new(compile(&model, &brittle_cfg)?).run(&fmap) {
        Err(EngineError::Fault(f)) => println!("without recovery: {f}"),
        Ok(_) => println!("without recovery: this seed's faults were all retried away"),
        Err(e) => return Err(e.into()),
    }

    // --- 4. Determinism: replaying the campaign reproduces the exact same
    // faults and counters at any thread count.
    let replay = Session::new(compile(&model, &faulty_cfg)?).run(&fmap)?;
    assert_eq!(replay.faults, run.faults, "campaigns must replay exactly");
    println!("replayed campaign: identical fault counters");
    Ok(())
}
