//! EdMIPS-style mixed 2/4-bit inference: every layer independently draws
//! weight and activation bit-widths from {2, 4}, and Ristretto's constant
//! input-bandwidth atom streams absorb the mix with no datapath
//! reconfiguration — the property §III-B calls "constant input data
//! bandwidth".
//!
//! ```text
//! cargo run --release --example mixed_precision
//! ```

use ristretto::baselines::prelude::*;
use ristretto::qnn::models::NetworkId;
use ristretto::qnn::workload::{NetworkStats, PrecisionPolicy};
use ristretto::ristretto_sim::analytic::RistrettoSim;
use ristretto::ristretto_sim::config::RistrettoConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = NetworkStats::generate(NetworkId::GoogLeNet, PrecisionPolicy::Mixed24, 2, 7);

    // Show the per-layer precision assignment EdMIPS would produce.
    println!(
        "{:<16} {:>6} {:>6} {:>14} {:>14}",
        "layer", "w", "a", "act sparsity", "w sparsity"
    );
    for l in net.layers.iter().take(12) {
        println!(
            "{:<16} {:>6} {:>6} {:>13.1}% {:>13.1}%",
            l.layer.name,
            l.w_bits.to_string(),
            l.a_bits.to_string(),
            l.activation.value_sparsity() * 100.0,
            l.weight.value_sparsity() * 100.0,
        );
    }
    println!("... ({} layers total)\n", net.layers.len());

    // One trait, one sweep: the analytic Ristretto model and the
    // baselines all answer through [`Backend`].
    let sim = RistrettoSim::try_new(RistrettoConfig::paper_default())?;
    let bitfusion = BitFusion::paper_default();
    let sparten = SparTen::paper_default();
    let machines: Vec<&dyn Backend> = vec![&sim, &bitfusion, &sparten];
    let reports: Vec<BaselineNetworkReport> =
        machines.iter().map(|m| m.simulate_network(&net)).collect();
    let r = &reports[0];

    println!("mixed 2/4-bit GoogLeNet:");
    println!("  {:<11} {:>12} cycles", "Ristretto:", r.total_cycles());
    for rep in &reports[1..] {
        println!(
            "  {:<11} {:>12} cycles ({:.2}x slower)",
            format!("{}:", rep.accelerator),
            rep.total_cycles(),
            rep.total_cycles() as f64 / r.total_cycles() as f64
        );
    }
    println!(
        "  energy: {:.1}% of Bit Fusion, {:.1}% of SparTen",
        r.total_energy().relative_to(&reports[1].total_energy()) * 100.0,
        r.total_energy().relative_to(&reports[2].total_energy()) * 100.0,
    );
    Ok(())
}
