//! Demonstrates the greedy w/a load balancer (§IV-E, Fig 18): because the
//! condensed streaming computation's latency is the closed form
//! `C_T = T·⌈S/N⌉`, the per-channel workload is known before execution and
//! can be balanced on *both* weight and activation statistics.
//!
//! ```text
//! cargo run --release --example load_balancing
//! ```

use ristretto::qnn::models::NetworkId;
use ristretto::qnn::quant::BitWidth;
use ristretto::qnn::workload::{NetworkStats, PrecisionPolicy};
use ristretto::ristretto_sim::balance::{balance, BalanceStrategy, ChannelWorkload};

fn main() {
    // The paper's Fig 18 layer: conv3_2 of 4-bit ResNet-18.
    let stats = NetworkStats::generate(
        NetworkId::ResNet18,
        PrecisionPolicy::Uniform(BitWidth::W4),
        2,
        20220101,
    );
    let layer = stats
        .layers
        .iter()
        .find(|l| l.layer.name == "conv3_2")
        .expect("conv3_2");
    let workloads: Vec<ChannelWorkload> = (0..layer.layer.in_channels)
        .map(|i| ChannelWorkload {
            channel: i,
            act_atoms: layer.act_atoms_per_channel[i],
            weight_atoms: layer.weight_atoms_per_channel[i],
        })
        .collect();

    println!(
        "conv3_2: {} input feature maps onto 32 compute tiles (16 multipliers each)\n",
        workloads.len()
    );
    for strategy in [
        BalanceStrategy::None,
        BalanceStrategy::WeightOnly,
        BalanceStrategy::WeightActivation,
    ] {
        let a = balance(&workloads, 32, 16, strategy);
        let max = *a.tile_cycles.iter().max().unwrap();
        let min = *a.tile_cycles.iter().min().unwrap();
        println!(
            "{strategy:>16}: makespan {max}, min tile {min}, utilization {:.1}%",
            a.utilization() * 100.0
        );
        print!("{:>16}  ", "profile:");
        let mean = a.tile_cycles.iter().sum::<u64>() as f64 / a.tile_cycles.len() as f64;
        for &c in &a.tile_cycles {
            // A crude bar: how far each tile sits from the mean.
            let r = c as f64 / mean;
            let ch = if r > 1.15 {
                '#'
            } else if r > 1.05 {
                '+'
            } else if r > 0.95 {
                '='
            } else if r > 0.85 {
                '-'
            } else {
                '.'
            };
            print!("{ch}");
        }
        println!("\n");
    }
    println!("(= near mean, # >15% over, . >15% under — w/a balancing flattens the profile)");
}
