//! Run miniature versions of all six benchmark networks end-to-end through
//! the compile-once/run-many engine — each network is compiled to its
//! static weight artifacts once, then a session performs the functional
//! inference — and report the effectual work each one did.
//!
//! ```text
//! cargo run --release --example mini_networks
//! ```

use ristretto::qnn::mini::MiniNetwork;
use ristretto::qnn::models::NetworkId;
use ristretto::qnn::quant::BitWidth;
use ristretto::qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};
use ristretto::ristretto_sim::config::RistrettoConfig;
use ristretto::ristretto_sim::engine::{compile, NetworkModel, Session};
use ristretto::ristretto_sim::pipeline::FunctionalPipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = RistrettoConfig::paper_default();
    println!(
        "{:<14} {:>7} {:>12} {:>12} {:>12} {:>10}",
        "network", "stages", "atom mults", "steps", "dense atoms", "saved"
    );
    for id in NetworkId::ALL {
        let mini = MiniNetwork::new(id);
        let mut gen = WorkloadGen::new(42 + id as u64);
        let (c, h, w) = mini.input;
        let input = gen.activations(c, h, w, &ActivationProfile::new(BitWidth::W8))?;
        let wp = WeightProfile::benchmark(BitWidth::W4);
        let model = NetworkModel::from_mini(&mini, &mut gen, &wp)?;

        // All static weight work happens here, once per network …
        let compiled = compile(&model, &cfg)?;
        // … and the session only pays the activation-side cost per image.
        let session = Session::new(compiled.clone());
        let run = session.run(&input)?;

        let reference = FunctionalPipeline::new(model.layers.clone(), *compiled.csc_config());
        assert_eq!(
            run.output,
            reference.run_dense_reference(&input)?,
            "CSC must match dense"
        );

        let mults: u64 = run
            .traces
            .iter()
            .map(|t| t.stats.intersect.atom_mults)
            .sum();
        let steps: u64 = run.traces.iter().map(|t| t.stats.intersect.steps).sum();
        // Dense equivalent: every (value, value) pair at full atom counts.
        let dense: u64 = mini
            .stages
            .iter()
            .map(|s| {
                let l = &s.layer;
                (l.in_channels * l.in_h * l.in_w) as u64
                    * 4
                    * (l.out_channels * l.kernel * l.kernel) as u64
                    * 2
            })
            .sum();
        println!(
            "{:<14} {:>7} {:>12} {:>12} {:>12} {:>9.1}x",
            id.name(),
            run.traces.len(),
            mults,
            steps,
            dense,
            dense as f64 / mults.max(1) as f64,
        );
    }
    println!("\nAll six outputs verified bit-exact against the dense reference.");
    Ok(())
}
