//! Run miniature versions of all six benchmark networks end-to-end through
//! the condensed streaming computation — functional inference with the PPU
//! between layers — and report the effectual work each one did.
//!
//! ```text
//! cargo run --release --example mini_networks
//! ```

use ristretto::atomstream::conv_csc::CscConfig;
use ristretto::qnn::mini::MiniNetwork;
use ristretto::qnn::models::NetworkId;
use ristretto::qnn::quant::BitWidth;
use ristretto::qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};
use ristretto::ristretto_sim::pipeline::{FunctionalPipeline, PipelineLayer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<14} {:>7} {:>12} {:>12} {:>12} {:>10}",
        "network", "stages", "atom mults", "steps", "dense atoms", "saved"
    );
    for id in NetworkId::ALL {
        let mini = MiniNetwork::new(id);
        let mut gen = WorkloadGen::new(42 + id as u64);
        let (c, h, w) = mini.input;
        let input = gen.activations(c, h, w, &ActivationProfile::new(BitWidth::W8))?;
        let wp = WeightProfile::benchmark(BitWidth::W4);
        let layers: Vec<PipelineLayer> = mini
            .stages
            .iter()
            .map(|stage| {
                let l = &stage.layer;
                Ok(PipelineLayer {
                    name: l.name.clone(),
                    kernels: gen.weights(l.out_channels, l.in_channels, l.kernel, l.kernel, &wp)?,
                    geom: l.geometry(),
                    w_bits: BitWidth::W4,
                    a_bits: BitWidth::W8,
                    requant_shift: 5,
                    out_bits: 8,
                    pool: stage.pool,
                })
            })
            .collect::<Result<_, qnn::error::QnnError>>()?;
        let pipeline = FunctionalPipeline::new(
            layers,
            CscConfig {
                tile_h: 4,
                tile_w: 4,
                ..CscConfig::default()
            },
        );

        let (out, traces) = pipeline.run(&input)?;
        assert_eq!(
            out,
            pipeline.run_dense_reference(&input)?,
            "CSC must match dense"
        );

        let mults: u64 = traces.iter().map(|t| t.stats.intersect.atom_mults).sum();
        let steps: u64 = traces.iter().map(|t| t.stats.intersect.steps).sum();
        // Dense equivalent: every (value, value) pair at full atom counts.
        let dense: u64 = mini
            .stages
            .iter()
            .map(|s| {
                let l = &s.layer;
                (l.in_channels * l.in_h * l.in_w) as u64
                    * 4
                    * (l.out_channels * l.kernel * l.kernel) as u64
                    * 2
            })
            .sum();
        println!(
            "{:<14} {:>7} {:>12} {:>12} {:>12} {:>9.1}x",
            id.name(),
            traces.len(),
            mults,
            steps,
            dense,
            dense as f64 / mults.max(1) as f64,
        );
    }
    println!("\nAll six outputs verified bit-exact against the dense reference.");
    Ok(())
}
