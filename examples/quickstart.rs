//! Quickstart: run a mixed-precision sparse convolution through the
//! condensed streaming computation, check it against the dense
//! reference, then serve a second image from a compiled engine session.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ristretto::atomstream::atom::AtomBits;
use ristretto::atomstream::conv_csc::{conv2d_csc, CscConfig};
use ristretto::atomstream::decompose::multiply_via_atoms;
use ristretto::qnn::conv::{conv2d, ConvGeometry};
use ristretto::qnn::prelude::*;
use ristretto::qnn::workload::{ActivationProfile, WeightProfile, WorkloadGen};
use ristretto::ristretto_sim::config::RistrettoConfig;
use ristretto::ristretto_sim::engine::{compile, NetworkModel, Session};
use ristretto::ristretto_sim::pipeline::PipelineLayer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The Fig 5 seed: an integer multiply as a 1-D atom convolution.
    let product = multiply_via_atoms(13, -11, 4, 8, AtomBits::B2)?;
    println!("Fig 5 example: 13 x -11 via 2-bit atom streams = {product}");
    assert_eq!(product, -143);

    // --- 2. A synthetic quantized layer: 8-bit activations, 4-bit weights.
    let mut gen = WorkloadGen::new(42);
    let fmap = gen.activations(8, 16, 16, &ActivationProfile::new(BitWidth::W8))?;
    let kernels = gen.weights(16, 8, 3, 3, &WeightProfile::benchmark(BitWidth::W4))?;

    let a_stats = SparsityStats::from_tensor3(&fmap, 8, 2);
    let w_stats = SparsityStats::from_tensor4(&kernels, 4, 2);
    println!(
        "activations: {:.1}% value sparsity, {:.1}% atom density",
        a_stats.value_sparsity() * 100.0,
        a_stats.atom_density * 100.0
    );
    println!(
        "weights:     {:.1}% value sparsity, {:.1}% atom density",
        w_stats.value_sparsity() * 100.0,
        w_stats.atom_density * 100.0
    );

    // --- 3. Convolve via CSC and via the dense reference; bit-exact match.
    let geom = ConvGeometry::unit_stride(1);
    let csc = conv2d_csc(
        &fmap,
        &kernels,
        geom,
        BitWidth::W8,
        BitWidth::W4,
        &CscConfig::default(),
    )?;
    let dense = conv2d(&fmap, &kernels, geom)?;
    assert_eq!(
        csc.output, dense,
        "CSC must match the dense reference bit-exactly"
    );

    let dense_atom_ops = (fmap.len() as u64) * 4 * (16 * 3 * 3) as u64 * 2;
    println!(
        "CSC did {} atom multiplications over {} intersection steps \
         (dense equivalent would be ~{dense_atom_ops}); outputs match the reference.",
        csc.stats.intersect.atom_mults, csc.stats.intersect.steps
    );

    // --- 4. Compile once, run many: the engine hoists the static weight
    //        work (flatten, compress, shuffle, balance) out of the input
    //        path, so a session serves extra images for activation-side
    //        cost only.
    let model = NetworkModel::new(
        "quickstart",
        (8, 16, 16),
        vec![PipelineLayer {
            name: "conv".to_string(),
            kernels,
            geom,
            w_bits: BitWidth::W4,
            a_bits: BitWidth::W8,
            requant_shift: 5,
            out_bits: 8,
            pool: None,
        }],
    );
    let compiled = compile(&model, &RistrettoConfig::paper_default())?;
    let session = Session::new(compiled.clone());
    let first = session.run(&fmap)?;
    let next_image = gen.activations(8, 16, 16, &ActivationProfile::new(BitWidth::W8))?;
    let second = session.run(&next_image)?;
    println!(
        "engine: {} weight atoms compiled once; 2 images served, streaming \
         {} and {} activation atoms",
        compiled.weight_atoms(),
        first.traces[0].stats.act_atoms,
        second.traces[0].stats.act_atoms,
    );
    Ok(())
}
